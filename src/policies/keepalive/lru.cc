#include "policies/keepalive/lru.h"

namespace cidre::policies {

double
LruKeepAlive::score(core::Engine &, cluster::Container &container)
{
    // A never-used container ranks by creation time, so stale pre-warmed
    // containers are evicted before recently warm ones.
    container.priority = static_cast<double>(
        container.use_count == 0 ? container.created_at
                                 : container.last_used_at);
    return container.priority;
}

} // namespace cidre::policies
