#include "policies/keepalive/cip.h"

#include <algorithm>

#include "core/engine.h"

namespace cidre::policies {

void
CipKeepAlive::onAdmit(core::Engine &engine, cluster::Container &container,
                      double eviction_watermark)
{
    // §3.3: when the cache is not full new containers start at clock 0;
    // when admission required evictions, the container inherits the
    // maximum evicted priority, keeping clocks monotone.
    container.clock = eviction_watermark;
    score(engine, container);
}

void
CipKeepAlive::onUse(core::Engine &engine, cluster::Container &container,
                    core::StartType /*type*/)
{
    // On any (delayed) warm start the clock is refreshed to the
    // container's priority *before* the update (§3.3), then the priority
    // is recomputed with Eq. 3.
    container.clock = container.priority;
    score(engine, container);
}

double
CipKeepAlive::score(core::Engine &engine, cluster::Container &container)
{
    const auto &profile = engine.workload().functions()[container.function];
    const auto &fs = engine.functionState(container.function);
    const double freq = fs.freqPerMinute(engine.now());
    const auto cost = static_cast<double>(profile.cold_start_us);
    const auto size = static_cast<double>(
        std::max<std::int64_t>(profile.memory_mb, 1));
    const auto k =
        static_cast<double>(std::max<std::uint32_t>(fs.cachedCount(), 1));
    container.priority = container.clock + freq * cost / (size * k);
    return container.priority;
}

} // namespace cidre::policies
