#include "policies/keepalive/cip.h"

#include <algorithm>
#include <cassert>

#include "core/engine.h"
#include "sim/serialize.h"

namespace cidre::policies {

void
CipKeepAlive::onAdmit(core::Engine &engine, cluster::Container &container,
                      double eviction_watermark)
{
    // §3.3: when the cache is not full new containers start at clock 0;
    // when admission required evictions, the container inherits the
    // maximum evicted priority, keeping clocks monotone.
    container.clock = eviction_watermark;
    score(engine, container);
}

void
CipKeepAlive::onUse(core::Engine &engine, cluster::Container &container,
                    core::StartType /*type*/)
{
    // On any (delayed) warm start the clock is refreshed to the
    // container's priority *before* the update (§3.3), then the priority
    // is recomputed with Eq. 3.  "Priority before the update" means the
    // value the last reclaim scan left behind: reconstruct it from the
    // recorded per-(worker, function) scan bonus when the container was
    // scanned while idle, else container.priority already holds it.
    double stale = container.priority;
    WorkerState &ws = stateFor(engine, container.worker);
    if (ws.valid) {
        const std::uint64_t epoch = engine.idleEpoch(container.worker);
        if (ws.epoch != epoch) {
            // The single expected bump is this container leaving the
            // idle list; mirror it (and recover the scan-time priority).
            if (ws.epoch + 1 == epoch && removeIdle(ws, container, &stale))
                ws.epoch = epoch;
            else
                ws.valid = false; // unobserved change: rebuild next scan
        }
        // Matching epochs: dispatch into a non-idle container (another
        // free thread) — no membership change, priority already fresh.
    }
    container.clock = stale;
    score(engine, container);
}

void
CipKeepAlive::onIdle(core::Engine &engine, cluster::Container &container)
{
    WorkerState &ws = stateFor(engine, container.worker);
    if (!ws.valid)
        return;
    if (ws.epoch + 1 != engine.idleEpoch(container.worker)) {
        ws.valid = false;
        return;
    }
    insertIdle(ws, container);
    ++ws.epoch;
}

void
CipKeepAlive::onEvicted(core::Engine &engine,
                        const cluster::Container &container)
{
    WorkerState &ws = stateFor(engine, container.worker);
    if (!ws.valid)
        return;
    const std::uint64_t epoch = engine.idleEpoch(container.worker);
    if (ws.epoch == epoch)
        return; // was not idle: never entered a bucket
    if (ws.epoch + 1 == epoch && removeIdle(ws, container, nullptr))
        ws.epoch = epoch;
    else
        ws.valid = false;
}

double
CipKeepAlive::score(core::Engine &engine, cluster::Container &container)
{
    container.priority =
        container.clock + bonusOf(engine, container.function);
    return container.priority;
}

double
CipKeepAlive::bonusOf(core::Engine &engine, trace::FunctionId function)
{
    if (bonus_cache_.size() <= function)
        bonus_cache_.resize(engine.workload().functionCount());
    const core::FunctionState &fs = engine.functionState(function);
    BonusCache &memo = bonus_cache_[function];
    const sim::SimTime now = engine.now();
    if (memo.when == now && memo.epoch == fs.priorityEpoch())
        return memo.bonus;

    const auto &profile = engine.workload().functions()[function];
    const double freq = fs.freqPerMinute(now);
    const auto cost = static_cast<double>(profile.cold_start_us);
    const auto size = static_cast<double>(
        std::max<std::int64_t>(profile.memory_mb, 1));
    const auto k =
        static_cast<double>(std::max<std::uint32_t>(fs.cachedCount(), 1));
    memo.when = now;
    memo.epoch = fs.priorityEpoch();
    memo.bonus = bonus_weight_ * (freq * cost / (size * k));
    return memo.bonus;
}

CipKeepAlive::WorkerState &
CipKeepAlive::stateFor(core::Engine &engine, cluster::WorkerId worker)
{
    if (workers_.size() <= worker)
        workers_.resize(engine.clusterRef().workerCount());
    WorkerState &ws = workers_[worker];
    const std::size_t fns = engine.workload().functionCount();
    if (ws.buckets.size() < fns) {
        ws.buckets.resize(fns);
        ws.active_slot.resize(fns, -1);
        ws.scan_bonus.resize(fns, 0.0);
        ws.scan_seq.resize(fns, 0);
    }
    return ws;
}

void
CipKeepAlive::insertIdle(WorkerState &ws, const cluster::Container &container)
{
    const trace::FunctionId f = container.function;
    std::vector<IdleEntry> &bucket = ws.buckets[f];
    if (bucket.empty()) {
        ws.active_slot[f] = static_cast<std::int32_t>(ws.active.size());
        ws.active.push_back(f);
    }
    // The entry remembers the scan seq current at insertion: a later
    // larger seq on this (worker, function) cell means a reclaim scan
    // saw the container while idle and re-wrote its priority.
    const IdleEntry entry{container.clock, container.seq, container.id,
                          ws.scan_seq[f]};
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), entry),
                  entry);
}

bool
CipKeepAlive::removeIdle(WorkerState &ws, const cluster::Container &container,
                         double *stale_priority)
{
    const trace::FunctionId f = container.function;
    if (f >= ws.buckets.size())
        return false;
    std::vector<IdleEntry> &bucket = ws.buckets[f];
    const IdleEntry key{container.clock, container.seq, container.id, 0};
    const auto it = std::lower_bound(bucket.begin(), bucket.end(), key);
    if (it == bucket.end() || it->seq != container.seq ||
        it->clock != container.clock) {
        return false;
    }
    if (stale_priority != nullptr) {
        *stale_priority = ws.scan_seq[f] > it->scan_mark
            ? container.clock + ws.scan_bonus[f]
            : container.priority;
    }
    bucket.erase(it);
    if (bucket.empty()) {
        const std::int32_t slot = ws.active_slot[f];
        assert(slot >= 0 && ws.active[static_cast<std::size_t>(slot)] == f);
        ws.active[static_cast<std::size_t>(slot)] = ws.active.back();
        ws.active_slot[ws.active[static_cast<std::size_t>(slot)]] = slot;
        ws.active.pop_back();
        ws.active_slot[f] = -1;
    }
    return true;
}

void
CipKeepAlive::rebuild(core::Engine &engine, cluster::WorkerId worker,
                      WorkerState &ws)
{
    for (const trace::FunctionId f : ws.active) {
        ws.buckets[f].clear();
        ws.active_slot[f] = -1;
    }
    ws.active.clear();
    for (const cluster::ContainerId cid : engine.idleContainersOn(worker)) {
        const cluster::Container &c = engine.clusterRef().container(cid);
        std::vector<IdleEntry> &bucket = ws.buckets[c.function];
        if (bucket.empty()) {
            ws.active_slot[c.function] =
                static_cast<std::int32_t>(ws.active.size());
            ws.active.push_back(c.function);
        }
        // Mark 0 (never a live scan seq): the scan that follows in
        // planReclaim re-records every bonus, so reconstruction always
        // routes through it — exactly the brute-force full-scan effect.
        bucket.push_back({c.clock, c.seq, cid, 0});
    }
    for (const trace::FunctionId f : ws.active)
        std::sort(ws.buckets[f].begin(), ws.buckets[f].end());
    ws.epoch = engine.idleEpoch(worker);
    ws.valid = true;
}

void
CipKeepAlive::planReclaim(core::Engine &engine,
                          const core::ReclaimRequest &request,
                          core::ReclaimPlan &plan)
{
    WorkerState &ws = stateFor(engine, request.worker);
    if (!ws.valid || ws.epoch != engine.idleEpoch(request.worker))
        rebuild(engine, request.worker, ws);

    // Record this scan.  One bonus per function with idle containers is
    // the exactness floor: Freq (Eq. 4) decays continuously, so every
    // scan instant has its own bonus — but bonusOf memoizes, making the
    // repeated scans of a multi-worker placement sweep O(1) per entry.
    const std::uint64_t seq = ++scan_counter_;
    ws.heads.clear();
    for (const trace::FunctionId f : ws.active) {
        const double bonus = bonusOf(engine, f);
        ws.scan_bonus[f] = bonus;
        ws.scan_seq[f] = seq;
        const IdleEntry &head = ws.buckets[f].front();
        ws.heads.push_back({head.clock + bonus, head.seq, head.id, f, 1});
    }

    // K-way merge of the bucket heads: pops come out in exactly the
    // ascending (score, seq) order a full rescore-and-sort would yield.
    const auto heap_after = [](const Head &a, const Head &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.seq > b.seq;
    };
    std::make_heap(ws.heads.begin(), ws.heads.end(), heap_after);

    std::int64_t freed = 0;
    cluster::Cluster &cl = engine.clusterRef();
    while (freed < request.need_mb && !ws.heads.empty()) {
        std::pop_heap(ws.heads.begin(), ws.heads.end(), heap_after);
        const Head h = ws.heads.back();
        ws.heads.pop_back();
        if (h.id != request.exclude) {
            cluster::Container &victim = cl.container(h.id);
            // The brute-force scan wrote a fresh priority into every
            // victim; the engine's watermark inheritance reads it.
            victim.priority = h.score;
            plan.evict.push_back(h.id);
            freed += victim.memory_mb;
        }
        const std::vector<IdleEntry> &bucket = ws.buckets[h.function];
        if (h.next < bucket.size()) {
            const IdleEntry &e = bucket[h.next];
            ws.heads.push_back({e.clock + ws.scan_bonus[h.function], e.seq,
                                e.id, h.function, h.next + 1});
            std::push_heap(ws.heads.begin(), ws.heads.end(), heap_after);
        }
    }
    if (freed < request.need_mb)
        plan.evict.clear(); // insufficient: the engine will defer
}

void
CipKeepAlive::saveState(sim::StateWriter &writer) const
{
    writer.put(scan_counter_);
    writer.put<std::uint64_t>(workers_.size());
    for (const WorkerState &ws : workers_) {
        writer.put<std::uint64_t>(ws.buckets.size());
        for (const std::vector<IdleEntry> &bucket : ws.buckets)
            writer.putVector(bucket);
        writer.putVector(ws.active);
        writer.putVector(ws.active_slot);
        writer.putVector(ws.scan_bonus);
        writer.putVector(ws.scan_seq);
        writer.put(ws.epoch);
        writer.put(ws.valid);
    }
}

void
CipKeepAlive::loadState(sim::StateReader &reader)
{
    scan_counter_ = reader.get<std::uint64_t>();
    const auto worker_count = reader.get<std::uint64_t>();
    workers_.clear();
    workers_.resize(static_cast<std::size_t>(worker_count));
    for (WorkerState &ws : workers_) {
        const auto bucket_count = reader.get<std::uint64_t>();
        ws.buckets.resize(static_cast<std::size_t>(bucket_count));
        for (std::vector<IdleEntry> &bucket : ws.buckets)
            bucket = reader.getVector<IdleEntry>();
        ws.active = reader.getVector<trace::FunctionId>();
        ws.active_slot = reader.getVector<std::int32_t>();
        ws.scan_bonus = reader.getVector<double>();
        ws.scan_seq = reader.getVector<std::uint64_t>();
        ws.epoch = reader.get<std::uint64_t>();
        ws.valid = reader.get<bool>();
        ws.heads.clear();
    }
    bonus_cache_.clear(); // pure memo: recomputes to the same values
    invalidateRankingCaches();
}

} // namespace cidre::policies
