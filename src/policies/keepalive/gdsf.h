/**
 * @file
 * GDSF keep-alive (FaasCache) and its concurrency-aware variant.
 *
 * FaasCache (Fuerst & Sharma, ASPLOS'21) ranks warm containers with
 * Greedy-Dual-Size-Frequency (paper Eq. 1):
 *
 *     Priority = Clock + Freq · Cost / Size
 *
 * where Clock is the cache-wide inflation watermark (the priority of the
 * last evicted victim), Freq the aggregate invocation count of the
 * function while cached, Cost the cold-start latency and Size the memory
 * footprint.
 *
 * FaasCache-C is the paper's §2.4 what-if variant (Eq. 2) that divides
 * by K, the number of warm containers the function currently has:
 *
 *     Priority = Clock + Freq · Cost / (Size · K)
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_GDSF_H
#define CIDRE_POLICIES_KEEPALIVE_GDSF_H

#include <vector>

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** FaasCache's GDSF keep-alive (Eq. 1). */
class GdsfKeepAlive : public RankedKeepAlive
{
  public:
    /** @param concurrency_aware true selects the Eq. 2 (-C) variant. */
    explicit GdsfKeepAlive(bool concurrency_aware = false);

    const char *name() const override
    {
        return concurrency_aware_ ? "faascache-c" : "faascache";
    }

    void onAdmit(core::Engine &engine, cluster::Container &container,
                 double eviction_watermark) override;
    void onUse(core::Engine &engine, cluster::Container &container,
               core::StartType type) override;
    void onEvicted(core::Engine &engine,
                   const cluster::Container &container) override;

    /** Current cache-wide clock watermark (visible for tests). */
    double watermark() const { return watermark_; }

    /** Checkpoint/restore: clock watermark + while-cached frequencies. */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

  private:
    /** Freq: invocations received by the function while it is cached. */
    std::uint64_t &freqOf(core::Engine &engine, trace::FunctionId id);

    bool concurrency_aware_;
    double watermark_ = 0.0;
    std::vector<std::uint64_t> freq_;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_GDSF_H
