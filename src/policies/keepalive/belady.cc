#include "policies/keepalive/belady.h"

#include "core/engine.h"

namespace cidre::policies {

double
BeladyKeepAlive::score(core::Engine &engine, cluster::Container &container)
{
    const sim::SimTime next =
        engine.nextArrivalAfter(container.function, engine.now());
    // Furthest next use evicts first; since the ranked base evicts the
    // *lowest* score, negate.  Never-used-again functions get the most
    // negative score and are always the first victims.
    container.priority = next == sim::kTimeInfinity
        ? -1e300
        : -static_cast<double>(next);
    return container.priority;
}

} // namespace cidre::policies
