/**
 * @file
 * Named policy registry: build any orchestration policy the paper
 * evaluates from a string, so benches/examples/tests share one spelling.
 *
 * Names (paper §4 "Compared Baselines" + §5.3 ablations):
 *
 *   ttl            OpenLambda default (10-min TTL)
 *   lru            LRU keep-alive
 *   faascache      GDSF keep-alive (Eq. 1), vanilla scaling
 *   faascache-c    concurrency-aware GDSF (Eq. 2), vanilla scaling
 *   rainbowcake    layer-wise caching + pre-warm
 *   icebreaker     prediction-driven pre-warming
 *   codecrunch     compression-first keep-alive
 *   flame          skew-aware centralized controller
 *   ensure         autoscaler with burst buffers
 *   hybrid         hybrid-histogram keep-alive (Shahrad'20; extension)
 *   offline        Belady MIN + oracle scaling
 *   cidre          CSS + CIP (the full system)
 *   cidre-bss      BSS + CIP
 *   css-alone      CSS + GDSF   (Fig. 15 ablation)
 *   bss-alone      BSS + GDSF   (Fig. 15 ablation)
 *   cip-alone      vanilla + CIP (Fig. 15 ablation)
 *   fixed-queue-N  queue length N on busy containers (Fig. 7), GDSF
 */

#ifndef CIDRE_POLICIES_REGISTRY_H
#define CIDRE_POLICIES_REGISTRY_H

#include <string>
#include <vector>

#include "core/config.h"
#include "core/policy.h"

namespace cidre::policies {

/**
 * Build the named policy bundle.
 * @param name   one of the names listed in the file comment.
 * @param config engine configuration (worker count etc. for baselines
 *               that need cluster shape).
 * @throws std::invalid_argument for unknown names.
 */
core::OrchestrationPolicy makePolicy(const std::string &name,
                                     const core::EngineConfig &config);

/** All fixed registry names (excludes the parameterized fixed-queue-N). */
const std::vector<std::string> &allPolicyNames();

/** The eleven systems of Fig. 12, in the paper's legend order. */
const std::vector<std::string> &figure12PolicyNames();

} // namespace cidre::policies

#endif // CIDRE_POLICIES_REGISTRY_H
