#include "policies/baselines/ensure.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/engine.h"
#include "policies/keepalive/lru.h"
#include "policies/scaling/vanilla.h"

#include "sim/serialize.h"

namespace cidre::policies {

EnsureAgent::EnsureAgent(const EnsureConfig &config)
    : config_(config)
{
}

std::uint32_t
EnsureAgent::targetPoolSize(core::Engine &engine,
                            trace::FunctionId function) const
{
    const auto &fs = engine.functionState(function);
    const auto &arrivals = fs.arrivalWindow();
    if (arrivals.count() < 2)
        return fs.totalInvocations() > 0 ? 1 : 0;

    // Rate over the elapsed time since the oldest retained arrival (not
    // just the sample span): a millisecond-wide burst must not read as a
    // sustained thousands-rps load.
    const double span_sec = sim::toSec(
        std::max<sim::SimTime>(engine.now() - arrivals.earliestTime(),
                               sim::msec(100)));
    const double rate =
        static_cast<double>(arrivals.count() - 1) / span_sec;
    const double exec_sec = sim::toSec(engine.estimateExecTime(function));
    const double offered = rate * std::max(exec_sec, 1e-3);
    const auto base = static_cast<std::uint32_t>(std::ceil(offered));
    const auto burst = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(std::max(base, 1u)))));
    return base + burst;
}

void
EnsureAgent::onTick(core::Engine &engine, sim::SimTime now)
{
    const std::size_t n = engine.workload().functionCount();
    if (surplus_since_.size() < n)
        surplus_since_.resize(n, -1);

    std::size_t budget = config_.prewarm_per_tick;
    for (trace::FunctionId id = 0; id < n; ++id) {
        const auto &fs = engine.functionState(id);
        const std::uint32_t have = fs.cachedCount() + fs.provisioningCount();
        const std::uint32_t target = targetPoolSize(engine, id);

        if (have < target) {
            surplus_since_[id] = -1;
            for (std::uint32_t k = have; k < target && budget > 0; ++k) {
                if (!engine.prewarm(id))
                    break; // no memory anywhere: stop trying this tick
                --budget;
            }
        } else if (have > target) {
            if (surplus_since_[id] < 0) {
                surplus_since_[id] = now;
            } else if (now - surplus_since_[id] >= config_.cooldown) {
                // Deactivate the surplus, least-recently-used idle first.
                std::vector<cluster::ContainerId> idle;
                for (const cluster::ContainerId cid : fs.cached()) {
                    const auto &c = engine.clusterRef().container(cid);
                    if (c.idle())
                        idle.push_back(cid);
                }
                std::sort(idle.begin(), idle.end(),
                          [&](cluster::ContainerId a,
                              cluster::ContainerId b) {
                              const auto &ca = engine.clusterRef().container(a);
                              const auto &cb = engine.clusterRef().container(b);
                              return ca.last_used_at < cb.last_used_at;
                          });
                std::uint32_t excess = have - target;
                for (const cluster::ContainerId cid : idle) {
                    if (excess == 0)
                        break;
                    engine.reapContainer(cid, /*expired=*/true);
                    --excess;
                }
                surplus_since_[id] = -1;
            }
        } else {
            surplus_since_[id] = -1;
        }
    }
}

core::OrchestrationPolicy
makeEnsure(const EnsureConfig &config)
{
    core::OrchestrationPolicy policy;
    policy.name = "ensure";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::make_unique<LruKeepAlive>();
    policy.agent = std::make_unique<EnsureAgent>(config);
    return policy;
}

void
EnsureAgent::saveState(sim::StateWriter &writer) const
{
    writer.putVector(surplus_since_);
}

void
EnsureAgent::loadState(sim::StateReader &reader)
{
    surplus_since_ = reader.getVector<sim::SimTime>();
}

} // namespace cidre::policies
