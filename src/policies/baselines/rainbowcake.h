/**
 * @file
 * RainbowCake baseline: layer-wise container caching and sharing
 * (Yu et al., ASPLOS'24), re-implemented at the granularity the CIDRE
 * evaluation exercises.
 *
 * Model: a container decomposes into three layers —
 *
 *   bare  (OS base,        ~15% of cost and memory, shared per worker),
 *   lang  (language runtime,~35%,  shared among same-runtime functions),
 *   user  (function code,   ~50%,  function-private).
 *
 * When a whole container is evicted or expires, its layers are demoted
 * into a per-worker layer cache with per-layer TTLs (user shortest, bare
 * longest).  A subsequent cold start on that worker pays only for the
 * layers that are missing; consuming a cached user layer removes it from
 * the cache (it becomes part of the container).  Layer memory is charged
 * against the same worker budget as containers; under pressure the
 * keep-alive half drops layers first (user → lang) and then evicts whole
 * containers LRU-first.
 *
 * Whole containers are kept on a short TTL (layers carry most of the
 * retention), which reproduces RainbowCake's published profile: low
 * memory usage and decent cold-start cost at low concurrency, degrading
 * under bursts when no idle layers remain (paper §5.4).
 */

#ifndef CIDRE_POLICIES_BASELINES_RAINBOWCAKE_H
#define CIDRE_POLICIES_BASELINES_RAINBOWCAKE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Layer cost/size fractions and TTLs. */
struct RainbowCakeConfig
{
    double bare_fraction = 0.05;
    double lang_fraction = 0.13;
    double user_fraction = 0.30;
    // The remainder (1 - bare - lang - user) is irreducible per-start
    // work (function init, sandbox wiring) that layer caching cannot
    // cover.

    sim::SimTime bare_ttl = sim::minutes(15);
    sim::SimTime lang_ttl = sim::minutes(8);
    sim::SimTime user_ttl = sim::minutes(3);

    /** Whole warm containers expire quickly; layers do the caching. */
    sim::SimTime container_ttl = sim::minutes(5);

    /**
     * Demote layers only while the worker keeps at least this fraction
     * of its memory free: layers are the lowest cache tier and must not
     * crowd out whole containers under hard pressure.
     */
    double demote_free_slack = 0.02;
};

/**
 * The shared layer-cache state, used by both halves of the baseline.
 * One instance is shared between the agent and the keep-alive policy.
 */
class LayerCache
{
  public:
    LayerCache(const RainbowCakeConfig &config, std::size_t workers);

    /** Demote an evicted container's layers into the cache. */
    void demote(core::Engine &engine, const cluster::Container &container);

    /**
     * Cold-start cost multiplier given cached layers; consumes the user
     * layer, refreshes shared-layer TTLs, and *locks* the lang layer for
     * the duration of the assembly: a shared layer serves one concurrent
     * provision at a time, which is exactly why RainbowCake degrades
     * under high concurrency (paper §5.4).
     * @param base_cost_us full cold-start latency (lock duration).
     */
    double coverProvision(core::Engine &engine,
                          const trace::FunctionProfile &fn,
                          cluster::WorkerId worker, sim::SimTime now,
                          sim::SimTime base_cost_us);

    /** Drop expired layers, releasing their memory. */
    void expire(core::Engine &engine, sim::SimTime now);

    /**
     * Free at least @p need_mb of layer memory on @p worker (user layers
     * first, then lang).  @return MB actually freed.
     */
    std::int64_t shed(core::Engine &engine, cluster::WorkerId worker,
                      std::int64_t need_mb);

    /** Total layer memory currently charged on @p worker. */
    std::int64_t layerMemoryMb(cluster::WorkerId worker) const;

    /** Checkpoint/restore (maps serialized in sorted key order). */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    struct Layer
    {
        std::int64_t memory_mb = 0;
        sim::SimTime expires_at = 0;
        /** A shared layer serves one assembly at a time. */
        sim::SimTime busy_until = 0;
    };

    struct WorkerLayers
    {
        Layer bare; //!< memory 0 when absent
        std::unordered_map<std::uint8_t, Layer> lang; //!< by runtime
        std::unordered_map<trace::FunctionId, Layer> user;
    };

    void releaseLayer(core::Engine &engine, cluster::WorkerId worker,
                      Layer &layer);

    RainbowCakeConfig config_;
    std::vector<WorkerLayers> workers_;
};

/** The proactive half: TTL expiry of layers + provision-cost coverage.
 *  Owns the LayerCache shared with the keep-alive half. */
class RainbowCakeAgent : public core::ClusterAgent
{
  public:
    RainbowCakeAgent(const RainbowCakeConfig &config, std::size_t workers);

    const char *name() const override { return "rainbowcake-agent"; }

    LayerCache &layers() { return layers_; }

    void onTick(core::Engine &engine, sim::SimTime now) override;
    sim::SimTime provisionCost(core::Engine &engine,
                               const trace::FunctionProfile &function,
                               cluster::WorkerId worker,
                               sim::SimTime base_cost) override;
    void onContainerEvicted(core::Engine &engine,
                            const cluster::Container &container) override;

    /** Checkpoint/restore: the owned layer cache (shared with the
     *  keep-alive half by reference, so this covers the bundle). */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  private:
    LayerCache layers_;
};

/** The reactive half: layer shedding + LRU container eviction + TTL. */
class RainbowCakeKeepAlive : public RankedKeepAlive
{
  public:
    RainbowCakeKeepAlive(LayerCache &layers, const RainbowCakeConfig &config);

    const char *name() const override { return "rainbowcake"; }

    void planReclaim(core::Engine &engine,
                     const core::ReclaimRequest &request,
                     core::ReclaimPlan &plan) override;
    void collectExpired(core::Engine &engine, sim::SimTime now,
                        std::vector<cluster::ContainerId> &out) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

    /** LRU-style score: frozen while a container is idle. */
    bool scoreStableWhileIdle() const override { return true; }

  private:
    LayerCache &layers_;
    RainbowCakeConfig config_;
};

/** Assemble the complete RainbowCake bundle (owns the shared cache). */
core::OrchestrationPolicy makeRainbowCake(
    const RainbowCakeConfig &config, std::size_t workers);

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_RAINBOWCAKE_H
