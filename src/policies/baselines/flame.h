/**
 * @file
 * Flame baseline (Yang et al., ASPLOS'23): a centralized cache
 * controller exploiting workload skewness.
 *
 * Flame's published insight is that FaaS load is highly skewed: a small
 * set of hot functions receives most invocations, while a long tail of
 * rarely invoked ("cold") functions wastes keep-alive memory.  Its
 * controller holds a global view and preferentially evicts containers of
 * cold functions, with tiered keep-alive durations.
 *
 * Re-implementation: functions are classified hot/cold by their recent
 * invocation rate; under pressure, cold-function containers are evicted
 * first (LRU within a class), and the periodic sweep expires idle
 * containers with a rate-dependent TTL (cold functions expire much
 * sooner).  The controller is global: the sweep sees all workers.
 */

#ifndef CIDRE_POLICIES_BASELINES_FLAME_H
#define CIDRE_POLICIES_BASELINES_FLAME_H

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Flame tuning knobs. */
struct FlameConfig
{
    /** Functions at or above this rate (reqs/min) count as hot. */
    double hot_rate_per_min = 10.0;

    /** Idle TTL for hot-function containers. */
    sim::SimTime hot_ttl = sim::minutes(10);

    /** Idle TTL for cold-function containers. */
    sim::SimTime cold_ttl = sim::minutes(1);
};

/** Skew-aware centralized keep-alive. */
class FlameKeepAlive : public RankedKeepAlive
{
  public:
    explicit FlameKeepAlive(const FlameConfig &config);

    const char *name() const override { return "flame"; }

    void collectExpired(core::Engine &engine, sim::SimTime now,
                        std::vector<cluster::ContainerId> &out) override;

    /** Whether @p function currently classifies as hot (for tests). */
    bool isHot(core::Engine &engine, trace::FunctionId function) const;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

  private:
    FlameConfig config_;
};

/** Assemble the Flame bundle (vanilla scaling). */
core::OrchestrationPolicy makeFlame(const FlameConfig &config);

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_FLAME_H
