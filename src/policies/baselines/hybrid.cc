#include "policies/baselines/hybrid.h"

#include <algorithm>
#include <memory>

#include "core/engine.h"
#include "policies/scaling/vanilla.h"

#include "sim/serialize.h"

namespace cidre::policies {

// ------------------------------------------------------------- IatHistory

IatHistory::Entry &
IatHistory::entryFor(trace::FunctionId function) const
{
    if (entries_.size() <= function)
        entries_.resize(function + 1);
    return entries_[function];
}

void
IatHistory::observe(trace::FunctionId function, sim::SimTime arrival)
{
    Entry &entry = entryFor(function);
    if (entry.last_arrival >= 0) {
        const auto gap = static_cast<double>(arrival - entry.last_arrival);
        if (entry.gaps.size() < kCap) {
            entry.gaps.push_back(gap);
        } else {
            entry.gaps[entry.next_slot] = gap;
            entry.next_slot = (entry.next_slot + 1) % kCap;
        }
    }
    entry.last_arrival = arrival;
}

std::size_t
IatHistory::count(trace::FunctionId function) const
{
    return entryFor(function).gaps.size();
}

sim::SimTime
IatHistory::percentile(trace::FunctionId function, double q,
                       std::size_t min_history) const
{
    const Entry &entry = entryFor(function);
    if (entry.gaps.size() < min_history)
        return -1;
    std::vector<double> sorted = entry.gaps;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                     sorted.end());
    return static_cast<sim::SimTime>(sorted[rank]);
}

sim::SimTime
IatHistory::lastArrival(trace::FunctionId function) const
{
    return entryFor(function).last_arrival;
}

// --------------------------------------------------------- HybridKeepAlive

HybridKeepAlive::HybridKeepAlive(const HybridConfig &config,
                                 IatHistory &history)
    : config_(config), history_(history)
{
}

double
HybridKeepAlive::score(core::Engine &, cluster::Container &container)
{
    // Under pressure: LRU among idle containers.
    container.priority = static_cast<double>(
        container.use_count == 0 ? container.created_at
                                 : container.last_used_at);
    return container.priority;
}

void
HybridKeepAlive::collectExpired(core::Engine &engine, sim::SimTime now,
                                std::vector<cluster::ContainerId> &out)
{
    const auto &cl = engine.clusterRef();
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        for (const cluster::ContainerId cid : engine.idleContainersOn(w)) {
            const cluster::Container &c = cl.container(cid);
            sim::SimTime keep = history_.percentile(
                c.function, config_.keep_percentile, config_.min_history);
            if (keep < 0)
                keep = config_.fallback_ttl;
            keep = std::min(keep, config_.max_keep);
            if (now - c.idle_since >= keep)
                out.push_back(cid);
        }
    }
}

// ------------------------------------------------------------- HybridAgent

HybridAgent::HybridAgent(const HybridConfig &config)
    : config_(config)
{
}

void
HybridAgent::onRequestObserved(core::Engine &, const trace::Request &req)
{
    history_.observe(req.function, req.arrival_us);
}

void
HybridAgent::onTick(core::Engine &engine, sim::SimTime now)
{
    // Pre-warm functions that went cold and whose pre-warm window (a low
    // IAT percentile after the last arrival) has opened, while the keep
    // window (a high percentile) has not yet passed.
    std::size_t budget = config_.prewarm_per_tick;
    const std::size_t n = engine.workload().functionCount();
    for (trace::FunctionId id = 0; id < n && budget > 0; ++id) {
        const auto &fs = engine.functionState(id);
        if (fs.cachedCount() > 0 || fs.provisioningCount() > 0)
            continue;
        const sim::SimTime last = history_.lastArrival(id);
        if (last < 0)
            continue;
        const sim::SimTime lead = history_.percentile(
            id, config_.prewarm_percentile, config_.min_history);
        if (lead < 0)
            continue; // histogram-less: fallback TTL path only
        // The pre-warm window is [p_low, p_high] after the last arrival:
        // beyond p_high the invocation is overdue and pre-warming would
        // likely waste a container.  (The keep cap applies to *reaping*,
        // not to this window.)
        const sim::SimTime until = history_.percentile(
            id, config_.keep_percentile, config_.min_history);
        if (now - last >= lead && now - last <= until) {
            if (engine.prewarm(id))
                --budget;
        }
    }
}

core::OrchestrationPolicy
makeHybridHistogram(const HybridConfig &config)
{
    auto agent = std::make_unique<HybridAgent>(config);
    auto keep_alive =
        std::make_unique<HybridKeepAlive>(config, agent->history());
    core::OrchestrationPolicy policy;
    policy.name = "hybrid";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::move(keep_alive);
    policy.agent = std::move(agent);
    return policy;
}

void
IatHistory::saveState(sim::StateWriter &writer) const
{
    writer.put<std::uint64_t>(entries_.size());
    for (const Entry &entry : entries_) {
        writer.put(entry.last_arrival);
        writer.putVector(entry.gaps);
        writer.put<std::uint64_t>(entry.next_slot);
    }
}

void
IatHistory::loadState(sim::StateReader &reader)
{
    const auto count = reader.get<std::uint64_t>();
    entries_.clear();
    entries_.resize(static_cast<std::size_t>(count));
    for (Entry &entry : entries_) {
        entry.last_arrival = reader.get<sim::SimTime>();
        entry.gaps = reader.getVector<double>();
        entry.next_slot =
            static_cast<std::size_t>(reader.get<std::uint64_t>());
    }
}

void
HybridAgent::saveState(sim::StateWriter &writer) const
{
    history_.saveState(writer);
}

void
HybridAgent::loadState(sim::StateReader &reader)
{
    history_.loadState(reader);
}

} // namespace cidre::policies
