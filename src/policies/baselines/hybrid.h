/**
 * @file
 * Hybrid-histogram keep-alive (Shahrad et al., USENIX ATC'20 —
 * "Serverless in the Wild"), the policy behind Azure Functions'
 * production keep-alive and a further baseline beyond the paper's list
 * (the paper builds on this work's trace analysis).
 *
 * Mechanism, per function, from its inter-arrival-time (IAT) histogram:
 *
 *  - keep-alive window = a high IAT percentile (default p99): idle
 *    containers are reaped once the next invocation is unlikely to be
 *    near;
 *  - pre-warm window = a low IAT percentile (default p5): after the
 *    function goes cold, a container is provisioned shortly before the
 *    next invocation is expected;
 *  - functions without enough history (or with out-of-range IATs) fall
 *    back to a fixed keep-alive TTL, like the original's standard
 *    keep-alive path.
 */

#ifndef CIDRE_POLICIES_BASELINES_HYBRID_H
#define CIDRE_POLICIES_BASELINES_HYBRID_H

#include <vector>

#include "core/policy.h"
#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Hybrid-histogram tuning knobs. */
struct HybridConfig
{
    /** IAT percentile bounding the keep-alive window. */
    double keep_percentile = 0.99;

    /** IAT percentile setting the pre-warm lead. */
    double prewarm_percentile = 0.05;

    /** Minimum observed IATs before the histogram is trusted. */
    std::size_t min_history = 8;

    /** Fallback TTL for histogram-less functions. */
    sim::SimTime fallback_ttl = sim::minutes(10);

    /** Cap on the keep-alive window (the original caps at hours). */
    sim::SimTime max_keep = sim::minutes(60);

    /** At most this many pre-warms per tick. */
    std::size_t prewarm_per_tick = 16;
};

/** Shared per-function IAT history. */
class IatHistory
{
  public:
    void observe(trace::FunctionId function, sim::SimTime arrival);

    /** Number of IATs recorded for @p function. */
    std::size_t count(trace::FunctionId function) const;

    /**
     * IAT percentile for @p function, or -1 when fewer than
     * @p min_history samples exist.
     */
    sim::SimTime percentile(trace::FunctionId function, double q,
                            std::size_t min_history) const;

    /** Last observed arrival (or -1). */
    sim::SimTime lastArrival(trace::FunctionId function) const;

    /** Checkpoint/restore of every function's gap ring. */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    struct Entry
    {
        sim::SimTime last_arrival = -1;
        std::vector<double> gaps; //!< ring buffer
        std::size_t next_slot = 0;
    };

    static constexpr std::size_t kCap = 64;
    mutable std::vector<Entry> entries_;

    Entry &entryFor(trace::FunctionId function) const;
};

/** Keep-alive half: per-function keep windows + LRU under pressure. */
class HybridKeepAlive : public RankedKeepAlive
{
  public:
    HybridKeepAlive(const HybridConfig &config, IatHistory &history);

    const char *name() const override { return "hybrid"; }

    void collectExpired(core::Engine &engine, sim::SimTime now,
                        std::vector<cluster::ContainerId> &out) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

    /** LRU-style score: frozen while a container is idle. */
    bool scoreStableWhileIdle() const override { return true; }

  private:
    HybridConfig config_;
    IatHistory &history_;
};

/** Agent half: IAT observation + pre-warm scheduling. Owns the history. */
class HybridAgent : public core::ClusterAgent
{
  public:
    explicit HybridAgent(const HybridConfig &config);

    const char *name() const override { return "hybrid-agent"; }

    IatHistory &history() { return history_; }

    void onRequestObserved(core::Engine &engine,
                           const trace::Request &request) override;
    void onTick(core::Engine &engine, sim::SimTime now) override;

    /** Checkpoint/restore: the owned IAT history (the keep-alive half
     *  reads it by reference, so this covers the whole bundle). */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  private:
    HybridConfig config_;
    IatHistory history_;
};

/** Assemble the hybrid-histogram bundle (vanilla scaling). */
core::OrchestrationPolicy makeHybridHistogram(const HybridConfig &config);

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_HYBRID_H
