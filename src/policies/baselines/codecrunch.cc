#include "policies/baselines/codecrunch.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "policies/scaling/vanilla.h"

namespace cidre::policies {

CodeCrunchKeepAlive::CodeCrunchKeepAlive()
    : GdsfKeepAlive(false)
{
}

void
CodeCrunchKeepAlive::planReclaim(core::Engine &engine,
                                 const core::ReclaimRequest &request,
                                 core::ReclaimPlan &plan)
{
    const Ranking &ranked = rankedIdle(engine, request.worker);

    const double ratio = engine.config().compression_ratio;
    std::int64_t freed = 0;
    // First pass: compress live idle containers, evict compressed ones.
    for (const RankEntry &entry : ranked) {
        const cluster::ContainerId cid = entry.id;
        if (freed >= request.need_mb)
            break;
        if (cid == request.exclude)
            continue;
        const cluster::Container &c = engine.clusterRef().container(cid);
        if (c.compressed()) {
            plan.evict.push_back(cid);
            freed += c.memory_mb;
        } else {
            plan.compress.push_back(cid);
            freed += c.full_memory_mb - std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       static_cast<double>(c.full_memory_mb) / ratio));
        }
    }
    if (freed >= request.need_mb)
        return;

    // Compression alone cannot satisfy the demand: fall back to evicting
    // from the lowest score upward (compressed or not).
    plan.clear();
    freed = 0;
    for (const RankEntry &entry : ranked) {
        if (freed >= request.need_mb)
            break;
        if (entry.id == request.exclude)
            continue;
        plan.evict.push_back(entry.id);
        freed += engine.clusterRef().container(entry.id).memory_mb;
    }
    if (freed < request.need_mb)
        plan.evict.clear();
}

core::OrchestrationPolicy
makeCodeCrunch()
{
    core::OrchestrationPolicy policy;
    policy.name = "codecrunch";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::make_unique<CodeCrunchKeepAlive>();
    return policy;
}

} // namespace cidre::policies
