#include "policies/baselines/icebreaker.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/engine.h"
#include "policies/keepalive/gdsf.h"
#include "policies/scaling/vanilla.h"

#include "sim/serialize.h"

namespace cidre::policies {

namespace {

constexpr std::size_t kGapHistoryCap = 32;

} // namespace

void
IceBreakerAgent::History::push(double gap, std::size_t cap)
{
    if (gaps.size() < cap) {
        gaps.push_back(gap);
    } else {
        gaps[next_slot] = gap;
        next_slot = (next_slot + 1) % cap;
    }
}

IceBreakerAgent::IceBreakerAgent(const IceBreakerConfig &config)
    : config_(config)
{
}

void
IceBreakerAgent::onRequestObserved(core::Engine &engine,
                                   const trace::Request &request)
{
    if (history_.size() < engine.workload().functionCount())
        history_.resize(engine.workload().functionCount());
    History &h = history_[request.function];
    if (h.last_arrival >= 0) {
        h.push(static_cast<double>(request.arrival_us - h.last_arrival),
               kGapHistoryCap);
    }
    h.last_arrival = request.arrival_us;
}

sim::SimTime
IceBreakerAgent::predictNextArrival(trace::FunctionId function) const
{
    if (function >= history_.size())
        return sim::kTimeInfinity;
    const History &h = history_[function];
    if (h.gaps.size() < config_.min_history)
        return sim::kTimeInfinity;

    double sum = 0.0;
    for (const double g : h.gaps)
        sum += g;
    const double mean = sum / static_cast<double>(h.gaps.size());
    if (mean <= 0.0)
        return sim::kTimeInfinity;
    double var = 0.0;
    for (const double g : h.gaps)
        var += (g - mean) * (g - mean);
    var /= static_cast<double>(h.gaps.size());
    const double cv = std::sqrt(var) / mean;
    if (cv > config_.max_gap_cv)
        return sim::kTimeInfinity; // too erratic to pre-warm profitably

    std::vector<double> sorted = h.gaps;
    std::nth_element(sorted.begin(), sorted.begin() +
                     static_cast<std::ptrdiff_t>(sorted.size() / 2),
                     sorted.end());
    const double median_gap = sorted[sorted.size() / 2];
    return h.last_arrival + static_cast<sim::SimTime>(median_gap);
}

void
IceBreakerAgent::onTick(core::Engine &engine, sim::SimTime now)
{
    if (history_.size() < engine.workload().functionCount())
        history_.resize(engine.workload().functionCount());

    // Reap containers idle beyond the keep window — IceBreaker keeps
    // function instances alive for a bounded window after (pre-)warming
    // rather than indefinitely.
    std::vector<cluster::ContainerId> stale;
    const auto &cl = engine.clusterRef();
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        for (const cluster::ContainerId cid : engine.idleContainersOn(w)) {
            const cluster::Container &c = cl.container(cid);
            if (now - c.idle_since >= config_.stale_after)
                stale.push_back(cid);
        }
    }
    for (const cluster::ContainerId cid : stale)
        engine.reapContainer(cid, /*expired=*/true);

    // Pre-warm functions predicted to fire within the window.
    std::size_t budget = config_.prewarm_per_tick;
    for (trace::FunctionId id = 0;
         id < engine.workload().functionCount() && budget > 0; ++id) {
        const auto &fs = engine.functionState(id);
        if (!fs.available().empty() || fs.provisioningCount() > 0)
            continue;
        const sim::SimTime predicted = predictNextArrival(id);
        if (predicted == sim::kTimeInfinity || predicted < now ||
            predicted > now + config_.prewarm_window) {
            continue;
        }
        if (engine.prewarm(id))
            --budget;
    }
}

core::OrchestrationPolicy
makeIceBreaker(const IceBreakerConfig &config)
{
    core::OrchestrationPolicy policy;
    policy.name = "icebreaker";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::make_unique<GdsfKeepAlive>(false);
    policy.agent = std::make_unique<IceBreakerAgent>(config);
    return policy;
}

void
IceBreakerAgent::saveState(sim::StateWriter &writer) const
{
    writer.put<std::uint64_t>(history_.size());
    for (const History &h : history_) {
        writer.put(h.last_arrival);
        writer.putVector(h.gaps);
        writer.put<std::uint64_t>(h.next_slot);
    }
}

void
IceBreakerAgent::loadState(sim::StateReader &reader)
{
    const auto count = reader.get<std::uint64_t>();
    history_.clear();
    history_.resize(static_cast<std::size_t>(count));
    for (History &h : history_) {
        h.last_arrival = reader.get<sim::SimTime>();
        h.gaps = reader.getVector<double>();
        h.next_slot = static_cast<std::size_t>(reader.get<std::uint64_t>());
    }
}

} // namespace cidre::policies
