/**
 * @file
 * CodeCrunch baseline (Basu Roy et al., ASPLOS'24): keep-alive under
 * memory pressure via container *compression*.
 *
 * Instead of evicting an idle container outright, CodeCrunch compresses
 * its checkpoint in memory (footprint shrinks by the configured ratio);
 * a later invocation restores it for a fraction of the cold-start cost.
 * Under continued pressure, compressed containers are evicted for real.
 *
 * Plan construction: rank idle containers by a GDSF-style cost-aware
 * score; walk from the lowest score, compressing live containers and
 * evicting already-compressed ones until the demand is met.  The engine
 * models the restore path (StartType::Restored) and charges
 * EngineConfig::restore_cost_fraction of the cold start.
 */

#ifndef CIDRE_POLICIES_BASELINES_CODECRUNCH_H
#define CIDRE_POLICIES_BASELINES_CODECRUNCH_H

#include "policies/keepalive/gdsf.h"

namespace cidre::policies {

/** Compression-first keep-alive. */
class CodeCrunchKeepAlive : public GdsfKeepAlive
{
  public:
    CodeCrunchKeepAlive();

    const char *name() const override { return "codecrunch"; }

    void planReclaim(core::Engine &engine,
                     const core::ReclaimRequest &request,
                     core::ReclaimPlan &plan) override;
};

/** Assemble the CodeCrunch bundle (vanilla scaling). */
core::OrchestrationPolicy makeCodeCrunch();

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_CODECRUNCH_H
