#include "policies/baselines/flame.h"

#include <memory>

#include "core/engine.h"
#include "policies/scaling/vanilla.h"

namespace cidre::policies {

namespace {

/** Recent invocation rate (reqs/min) from the arrival window. */
double
recentRatePerMin(const core::FunctionState &fs)
{
    const auto &window = fs.arrivalWindow();
    if (window.count() < 2)
        return 0.0;
    const double span_min =
        sim::toMin(window.latestTime() - window.earliestTime());
    if (span_min <= 0.0)
        return 1e9; // a burst within one instant: certainly hot
    return static_cast<double>(window.count() - 1) / span_min;
}

} // namespace

FlameKeepAlive::FlameKeepAlive(const FlameConfig &config)
    : config_(config)
{
}

bool
FlameKeepAlive::isHot(core::Engine &engine, trace::FunctionId function) const
{
    return recentRatePerMin(engine.functionState(function)) >=
        config_.hot_rate_per_min;
}

double
FlameKeepAlive::score(core::Engine &engine, cluster::Container &container)
{
    // Cold-function containers occupy the bottom of the order (evicted
    // first), LRU within each class.  The hot-class offset dwarfs any
    // timestamp, so classes never interleave.
    const double hot_bonus =
        isHot(engine, container.function) ? 1e18 : 0.0;
    const double recency = static_cast<double>(
        container.use_count == 0 ? container.created_at
                                 : container.last_used_at);
    container.priority = hot_bonus + recency;
    return container.priority;
}

void
FlameKeepAlive::collectExpired(core::Engine &engine, sim::SimTime now,
                               std::vector<cluster::ContainerId> &out)
{
    const auto &cl = engine.clusterRef();
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        for (const cluster::ContainerId cid : engine.idleContainersOn(w)) {
            const cluster::Container &c = cl.container(cid);
            const sim::SimTime ttl = isHot(engine, c.function)
                ? config_.hot_ttl : config_.cold_ttl;
            if (now - c.idle_since >= ttl)
                out.push_back(cid);
        }
    }
}

core::OrchestrationPolicy
makeFlame(const FlameConfig &config)
{
    core::OrchestrationPolicy policy;
    policy.name = "flame";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::make_unique<FlameKeepAlive>(config);
    return policy;
}

} // namespace cidre::policies
