/**
 * @file
 * ENSURE baseline (Suresh et al., ACSOS'20): an autoscaler that keeps a
 * per-function pool of warm containers sized to recent traffic plus a
 * "burst buffer", and deactivates surplus capacity after a cooldown.
 *
 * Re-implementation of the evaluated mechanism (FnScale):
 *
 *   target(f) = ceil(λ_f · E[exec_f]) + ceil(sqrt(ceil(λ_f · E[exec_f])))
 *
 * i.e. the Erlang-style offered load plus square-root staffing headroom.
 * Each tick, functions below target are pre-warmed up to the deficit;
 * functions above target for longer than the cooldown have surplus idle
 * containers (LRU first) deactivated.  Pressure eviction falls back to
 * plain LRU.  As the paper notes (§5.1), proactively reserving burst
 * buffers under restricted global memory is exactly what limits ENSURE
 * at high concurrency.
 */

#ifndef CIDRE_POLICIES_BASELINES_ENSURE_H
#define CIDRE_POLICIES_BASELINES_ENSURE_H

#include <vector>

#include "core/policy.h"

namespace cidre::policies {

/** ENSURE tuning knobs. */
struct EnsureConfig
{
    /** Deactivate surplus only after it persisted this long. */
    sim::SimTime cooldown = sim::sec(30);

    /** At most this many pre-warms per tick. */
    std::size_t prewarm_per_tick = 16;
};

/** The autoscaling agent. */
class EnsureAgent : public core::ClusterAgent
{
  public:
    explicit EnsureAgent(const EnsureConfig &config);

    const char *name() const override { return "ensure"; }

    void onTick(core::Engine &engine, sim::SimTime now) override;

    /** Target warm-pool size for @p function (exposed for tests). */
    std::uint32_t targetPoolSize(core::Engine &engine,
                                 trace::FunctionId function) const;

    /** Checkpoint/restore: per-function surplus cooldown clocks. */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  private:
    EnsureConfig config_;
    /** Since when each function has been above target (-1 = not). */
    std::vector<sim::SimTime> surplus_since_;
};

/** Assemble the ENSURE bundle (vanilla scaling + LRU pressure eviction). */
core::OrchestrationPolicy makeEnsure(const EnsureConfig &config);

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_ENSURE_H
