/**
 * @file
 * IceBreaker baseline (Roy et al., ASPLOS'22): prediction-driven
 * pre-warming with server-heterogeneity-aware placement.
 *
 * The published system predicts each function's next invocation time
 * from its invocation history (via Fourier decomposition) and pre-warms
 * the function shortly before, choosing between cheap and expensive
 * servers by prediction confidence.  We keep the evaluated essence:
 *
 *  - per-function next-arrival prediction from the recent inter-arrival
 *    gaps (median gap, with a dispersion guard: unpredictable functions
 *    — gap CV above a threshold — are not pre-warmed);
 *  - a pre-warm window: on each tick, functions predicted to fire within
 *    the window and lacking a free container are pre-warmed;
 *  - stale pre-warmed containers (never used within the keep window) are
 *    reaped;
 *  - cost-aware GDSF eviction under pressure (its keep-alive half), with
 *    worker speed factors modelling heterogeneity (homogeneous in the
 *    paper's controlled comparison, which diminishes IceBreaker's edge —
 *    §5.1).
 */

#ifndef CIDRE_POLICIES_BASELINES_ICEBREAKER_H
#define CIDRE_POLICIES_BASELINES_ICEBREAKER_H

#include <vector>

#include "core/policy.h"

namespace cidre::policies {

/** IceBreaker tuning knobs. */
struct IceBreakerConfig
{
    /** Pre-warm functions predicted to fire within this window. */
    sim::SimTime prewarm_window = sim::sec(10);

    /** Reap pre-warmed containers unused for this long. */
    sim::SimTime stale_after = sim::minutes(2);

    /** Skip pre-warming functions whose gap CV exceeds this. */
    double max_gap_cv = 1.0;

    /** Need at least this many observed gaps before predicting. */
    std::size_t min_history = 4;

    /** At most this many pre-warms per tick (provisioning burst cap). */
    std::size_t prewarm_per_tick = 8;
};

/** The predictive pre-warming agent. */
class IceBreakerAgent : public core::ClusterAgent
{
  public:
    explicit IceBreakerAgent(const IceBreakerConfig &config);

    const char *name() const override { return "icebreaker"; }

    void onRequestObserved(core::Engine &engine,
                           const trace::Request &request) override;
    void onTick(core::Engine &engine, sim::SimTime now) override;

    /**
     * Predicted next arrival for @p function, or sim::kTimeInfinity when
     * the history is too short or too erratic.  Exposed for tests.
     */
    sim::SimTime predictNextArrival(trace::FunctionId function) const;

    /** Checkpoint/restore: per-function arrival-gap histories. */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  private:
    struct History
    {
        sim::SimTime last_arrival = -1;
        std::vector<double> gaps; //!< ring buffer of recent gaps (µs)
        std::size_t next_slot = 0;

        void push(double gap, std::size_t cap);
    };

    IceBreakerConfig config_;
    std::vector<History> history_; //!< by function id
};

/** Assemble the IceBreaker bundle (vanilla scaling + GDSF keep-alive). */
core::OrchestrationPolicy makeIceBreaker(const IceBreakerConfig &config);

} // namespace cidre::policies

#endif // CIDRE_POLICIES_BASELINES_ICEBREAKER_H
