#include "policies/baselines/rainbowcake.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/engine.h"
#include "policies/scaling/vanilla.h"

#include "sim/serialize.h"

namespace cidre::policies {

namespace {

std::int64_t
fractionMb(std::int64_t total, double fraction)
{
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(static_cast<double>(total) * fraction)));
}

} // namespace

// ---------------------------------------------------------------- LayerCache

LayerCache::LayerCache(const RainbowCakeConfig &config, std::size_t workers)
    : config_(config), workers_(workers)
{
}

void
LayerCache::releaseLayer(core::Engine &engine, cluster::WorkerId worker,
                         Layer &layer)
{
    if (layer.memory_mb > 0)
        engine.clusterRef().worker(worker).release(layer.memory_mb);
    layer.memory_mb = 0;
    layer.expires_at = 0;
}

void
LayerCache::demote(core::Engine &engine, const cluster::Container &container)
{
    WorkerLayers &wl = workers_.at(container.worker);
    const auto &fn = engine.workload().functions()[container.function];
    cluster::Worker &host = engine.clusterRef().worker(container.worker);
    const sim::SimTime now = engine.now();

    // Demotion is best effort: a layer is kept only if not already
    // cached and the memory fits.  The small shared layers (bare, lang)
    // demote whenever they fit; the bulky function-private user layer
    // additionally requires the worker to retain some slack, or layer
    // churn crowds out whole containers under hard pressure.
    const auto slack = static_cast<std::int64_t>(
        config_.demote_free_slack * static_cast<double>(host.capacityMb()));
    const auto fits_with_slack = [&](std::int64_t mb) {
        return host.freeMb() - mb >= slack;
    };
    const std::int64_t bare_mb = fractionMb(fn.memory_mb,
                                            config_.bare_fraction);
    if (wl.bare.memory_mb == 0 && host.fits(bare_mb)) {
        host.reserve(bare_mb);
        wl.bare = {bare_mb, now + config_.bare_ttl};
    } else if (wl.bare.memory_mb > 0) {
        wl.bare.expires_at = now + config_.bare_ttl;
    }

    const auto runtime_key = static_cast<std::uint8_t>(fn.runtime);
    const std::int64_t lang_mb = fractionMb(fn.memory_mb,
                                            config_.lang_fraction);
    auto lang_it = wl.lang.find(runtime_key);
    if (lang_it == wl.lang.end()) {
        if (host.fits(lang_mb)) {
            host.reserve(lang_mb);
            wl.lang.emplace(runtime_key,
                            Layer{lang_mb, now + config_.lang_ttl});
        }
    } else {
        lang_it->second.expires_at = now + config_.lang_ttl;
    }

    const std::int64_t user_mb =
        fractionMb(fn.memory_mb, config_.user_fraction);
    auto user_it = wl.user.find(container.function);
    if (user_it == wl.user.end()) {
        if (fits_with_slack(user_mb)) {
            host.reserve(user_mb);
            wl.user.emplace(container.function,
                            Layer{user_mb, now + config_.user_ttl});
        }
    } else {
        user_it->second.expires_at = now + config_.user_ttl;
    }
}

double
LayerCache::coverProvision(core::Engine &engine,
                           const trace::FunctionProfile &fn,
                           cluster::WorkerId worker, sim::SimTime now,
                           sim::SimTime base_cost_us)
{
    WorkerLayers &wl = workers_.at(worker);
    double multiplier = 1.0;

    if (wl.bare.memory_mb > 0) {
        // The bare OS layer is read-only shareable by any concurrency.
        multiplier -= config_.bare_fraction;
        wl.bare.expires_at = now + config_.bare_ttl;
    }
    const auto lang_it = wl.lang.find(static_cast<std::uint8_t>(fn.runtime));
    if (lang_it != wl.lang.end() && now >= lang_it->second.busy_until) {
        multiplier -= config_.lang_fraction;
        lang_it->second.expires_at = now + config_.lang_ttl;
        lang_it->second.busy_until = now + base_cost_us;
    }
    const auto user_it = wl.user.find(fn.id);
    if (user_it != wl.user.end()) {
        multiplier -= config_.user_fraction;
        // The user layer is absorbed into the new container.
        releaseLayer(engine, worker, user_it->second);
        wl.user.erase(user_it);
    }
    // The remainder is irreducible per-start work.
    const double floor =
        1.0 - config_.bare_fraction - config_.lang_fraction -
        config_.user_fraction;
    return std::max(multiplier, std::max(floor, 0.02));
}

void
LayerCache::expire(core::Engine &engine, sim::SimTime now)
{
    for (cluster::WorkerId w = 0; w < workers_.size(); ++w) {
        WorkerLayers &wl = workers_[w];
        if (wl.bare.memory_mb > 0 && wl.bare.expires_at <= now)
            releaseLayer(engine, w, wl.bare);
        for (auto it = wl.lang.begin(); it != wl.lang.end();) {
            if (it->second.expires_at <= now) {
                releaseLayer(engine, w, it->second);
                it = wl.lang.erase(it);
            } else {
                ++it;
            }
        }
        for (auto it = wl.user.begin(); it != wl.user.end();) {
            if (it->second.expires_at <= now) {
                releaseLayer(engine, w, it->second);
                it = wl.user.erase(it);
            } else {
                ++it;
            }
        }
    }
}

std::int64_t
LayerCache::shed(core::Engine &engine, cluster::WorkerId worker,
                 std::int64_t need_mb)
{
    WorkerLayers &wl = workers_.at(worker);
    std::int64_t freed = 0;

    // User layers first (cheapest to regain), then lang, then bare.
    for (auto it = wl.user.begin(); it != wl.user.end() && freed < need_mb;) {
        freed += it->second.memory_mb;
        releaseLayer(engine, worker, it->second);
        it = wl.user.erase(it);
    }
    for (auto it = wl.lang.begin(); it != wl.lang.end() && freed < need_mb;) {
        freed += it->second.memory_mb;
        releaseLayer(engine, worker, it->second);
        it = wl.lang.erase(it);
    }
    if (freed < need_mb && wl.bare.memory_mb > 0) {
        freed += wl.bare.memory_mb;
        releaseLayer(engine, worker, wl.bare);
    }
    return freed;
}

std::int64_t
LayerCache::layerMemoryMb(cluster::WorkerId worker) const
{
    const WorkerLayers &wl = workers_.at(worker);
    std::int64_t total = wl.bare.memory_mb;
    for (const auto &[key, layer] : wl.lang)
        total += layer.memory_mb;
    for (const auto &[key, layer] : wl.user)
        total += layer.memory_mb;
    return total;
}

// ----------------------------------------------------------------- the agent

RainbowCakeAgent::RainbowCakeAgent(const RainbowCakeConfig &config,
                                   std::size_t workers)
    : layers_(config, workers)
{
}

void
RainbowCakeAgent::onTick(core::Engine &engine, sim::SimTime now)
{
    layers_.expire(engine, now);
}

sim::SimTime
RainbowCakeAgent::provisionCost(core::Engine &engine,
                                const trace::FunctionProfile &function,
                                cluster::WorkerId worker,
                                sim::SimTime base_cost)
{
    const double multiplier = layers_.coverProvision(
        engine, function, worker, engine.now(), base_cost);
    return std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(
               std::llround(static_cast<double>(base_cost) * multiplier)));
}

void
RainbowCakeAgent::onContainerEvicted(core::Engine &engine,
                                     const cluster::Container &container)
{
    layers_.demote(engine, container);
}

// ------------------------------------------------------------- the keepalive

RainbowCakeKeepAlive::RainbowCakeKeepAlive(LayerCache &layers,
                                           const RainbowCakeConfig &config)
    : layers_(layers), config_(config)
{
}

void
RainbowCakeKeepAlive::planReclaim(core::Engine &engine,
                                  const core::ReclaimRequest &request,
                                  core::ReclaimPlan &plan)
{
    // Shed cached layers first (side effect: memory is released right
    // away, the engine recomputes the residual demand), then fall back
    // to LRU whole-container eviction.
    const std::int64_t freed =
        layers_.shed(engine, request.worker, request.need_mb);
    if (freed >= request.need_mb)
        return;
    core::ReclaimRequest residual = request;
    residual.need_mb -= freed;
    RankedKeepAlive::planReclaim(engine, residual, plan);
}

void
RainbowCakeKeepAlive::collectExpired(core::Engine &engine, sim::SimTime now,
                                     std::vector<cluster::ContainerId> &out)
{
    // Whole containers expire quickly; their layers live on via demote().
    const auto &cl = engine.clusterRef();
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        for (const cluster::ContainerId cid : engine.idleContainersOn(w)) {
            const cluster::Container &c = cl.container(cid);
            if (now - c.idle_since >= config_.container_ttl)
                out.push_back(cid);
        }
    }
}

double
RainbowCakeKeepAlive::score(core::Engine &, cluster::Container &container)
{
    container.priority = static_cast<double>(
        container.use_count == 0 ? container.created_at
                                 : container.last_used_at);
    return container.priority;
}

// ------------------------------------------------------------------ assembly

core::OrchestrationPolicy
makeRainbowCake(const RainbowCakeConfig &config, std::size_t workers)
{
    auto agent = std::make_unique<RainbowCakeAgent>(config, workers);
    auto keep_alive =
        std::make_unique<RainbowCakeKeepAlive>(agent->layers(), config);
    core::OrchestrationPolicy policy;
    policy.name = "rainbowcake";
    policy.scaling = std::make_unique<VanillaScaling>();
    policy.keep_alive = std::move(keep_alive);
    policy.agent = std::move(agent);
    return policy;
}

void
LayerCache::saveState(sim::StateWriter &writer) const
{
    writer.put<std::uint64_t>(workers_.size());
    for (const WorkerLayers &wl : workers_) {
        writer.put(wl.bare);
        // Unordered maps iterate in a hash-dependent order; serialize
        // in sorted key order so checkpoint bytes are deterministic.
        std::vector<std::uint8_t> langs;
        langs.reserve(wl.lang.size());
        for (const auto &[key, layer] : wl.lang)
            langs.push_back(key);
        std::sort(langs.begin(), langs.end());
        writer.put<std::uint64_t>(langs.size());
        for (const std::uint8_t key : langs) {
            writer.put(key);
            writer.put(wl.lang.at(key));
        }
        std::vector<trace::FunctionId> fns;
        fns.reserve(wl.user.size());
        for (const auto &[key, layer] : wl.user)
            fns.push_back(key);
        std::sort(fns.begin(), fns.end());
        writer.put<std::uint64_t>(fns.size());
        for (const trace::FunctionId key : fns) {
            writer.put(key);
            writer.put(wl.user.at(key));
        }
    }
}

void
LayerCache::loadState(sim::StateReader &reader)
{
    const auto worker_count = reader.get<std::uint64_t>();
    if (worker_count != workers_.size())
        throw std::runtime_error(
            "LayerCache: checkpoint worker count mismatch");
    for (WorkerLayers &wl : workers_) {
        wl.bare = reader.get<Layer>();
        wl.lang.clear();
        const auto lang_count = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < lang_count; ++i) {
            const auto key = reader.get<std::uint8_t>();
            wl.lang[key] = reader.get<Layer>();
        }
        wl.user.clear();
        const auto user_count = reader.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < user_count; ++i) {
            const auto key = reader.get<trace::FunctionId>();
            wl.user[key] = reader.get<Layer>();
        }
    }
}

void
RainbowCakeAgent::saveState(sim::StateWriter &writer) const
{
    layers_.saveState(writer);
}

void
RainbowCakeAgent::loadState(sim::StateReader &reader)
{
    layers_.loadState(reader);
}

} // namespace cidre::policies
