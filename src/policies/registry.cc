#include "policies/registry.h"

#include <memory>
#include <stdexcept>

#include "policies/baselines/codecrunch.h"
#include "policies/baselines/ensure.h"
#include "policies/baselines/flame.h"
#include "policies/baselines/hybrid.h"
#include "policies/baselines/icebreaker.h"
#include "policies/baselines/rainbowcake.h"
#include "policies/keepalive/belady.h"
#include "policies/keepalive/cip.h"
#include "policies/keepalive/gdsf.h"
#include "policies/keepalive/lru.h"
#include "policies/keepalive/ttl.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/css.h"
#include "policies/scaling/fixed_queue.h"
#include "policies/scaling/oracle.h"
#include "policies/scaling/vanilla.h"

namespace cidre::policies {

namespace {

core::OrchestrationPolicy
bundle(std::string name, std::unique_ptr<core::ScalingPolicy> scaling,
       std::unique_ptr<core::KeepAlivePolicy> keep_alive,
       std::unique_ptr<core::ClusterAgent> agent = nullptr)
{
    core::OrchestrationPolicy policy;
    policy.name = std::move(name);
    policy.scaling = std::move(scaling);
    policy.keep_alive = std::move(keep_alive);
    policy.agent = std::move(agent);
    return policy;
}

} // namespace

core::OrchestrationPolicy
makePolicy(const std::string &name, const core::EngineConfig &config)
{
    if (name == "ttl") {
        return bundle(name, std::make_unique<VanillaScaling>(),
                      std::make_unique<TtlKeepAlive>());
    }
    if (name == "lru") {
        return bundle(name, std::make_unique<VanillaScaling>(),
                      std::make_unique<LruKeepAlive>());
    }
    if (name == "faascache") {
        return bundle(name, std::make_unique<VanillaScaling>(),
                      std::make_unique<GdsfKeepAlive>(false));
    }
    if (name == "faascache-c") {
        return bundle(name, std::make_unique<VanillaScaling>(),
                      std::make_unique<GdsfKeepAlive>(true));
    }
    if (name == "rainbowcake")
        return makeRainbowCake(RainbowCakeConfig{}, config.cluster.workers);
    if (name == "icebreaker")
        return makeIceBreaker(IceBreakerConfig{});
    if (name == "codecrunch")
        return makeCodeCrunch();
    if (name == "flame")
        return makeFlame(FlameConfig{});
    if (name == "ensure")
        return makeEnsure(EnsureConfig{});
    if (name == "hybrid")
        return makeHybridHistogram(HybridConfig{});
    if (name == "offline") {
        return bundle(name, std::make_unique<OracleScaling>(),
                      std::make_unique<BeladyKeepAlive>());
    }
    if (name == "cidre") {
        return bundle(name, std::make_unique<CssScaling>(),
                      std::make_unique<CipKeepAlive>());
    }
    if (name == "cidre-bss") {
        return bundle(name, std::make_unique<BssScaling>(),
                      std::make_unique<CipKeepAlive>());
    }
    if (name == "css-alone") {
        return bundle(name, std::make_unique<CssScaling>(),
                      std::make_unique<GdsfKeepAlive>(false));
    }
    if (name == "bss-alone") {
        return bundle(name, std::make_unique<BssScaling>(),
                      std::make_unique<GdsfKeepAlive>(false));
    }
    if (name == "cip-alone") {
        return bundle(name, std::make_unique<VanillaScaling>(),
                      std::make_unique<CipKeepAlive>());
    }
    if (name.rfind("fixed-queue-", 0) == 0) {
        const std::string depth_text = name.substr(12);
        std::size_t used = 0;
        unsigned long depth = 0;
        try {
            depth = std::stoul(depth_text, &used);
        } catch (const std::logic_error &) {
            used = 0;
        }
        if (used == 0 || used != depth_text.size())
            throw std::invalid_argument("makePolicy: bad queue depth in '" +
                                        name + "'");
        return bundle(name, std::make_unique<FixedQueueScaling>(depth),
                      std::make_unique<GdsfKeepAlive>(false));
    }
    throw std::invalid_argument("makePolicy: unknown policy '" + name + "'");
}

const std::vector<std::string> &
allPolicyNames()
{
    static const std::vector<std::string> names = {
        "ttl",        "lru",       "faascache", "faascache-c",
        "rainbowcake", "icebreaker", "codecrunch", "flame",
        "ensure",     "hybrid",    "offline",   "cidre",
        "cidre-bss",  "css-alone", "bss-alone", "cip-alone",
    };
    return names;
}

const std::vector<std::string> &
figure12PolicyNames()
{
    static const std::vector<std::string> names = {
        "ttl",    "lru",        "faascache", "rainbowcake",
        "flame",  "ensure",     "icebreaker", "codecrunch",
        "cidre-bss", "cidre",   "offline",
    };
    return names;
}

} // namespace cidre::policies
