/**
 * @file
 * The `.ckpt` checkpoint container: a versioned, checksummed envelope
 * around an engine state payload (see Engine::saveState).
 *
 * Layout (little-endian, like `.ctrb`):
 *
 *   [CheckpointHeader — 40 bytes]
 *   [payload — opaque StateWriter bytes]
 *
 * The header carries a whole-payload checksum (same 4-lane FNV as the
 * trace image) and a *fingerprint*: a digest of everything the payload
 * is only meaningful against — engine configuration, policy name and
 * workload shape.  Restoring a checkpoint into a run with a different
 * seed, cluster, policy or trace is rejected up front instead of
 * diverging silently.
 *
 * Writes are atomic (tmp file + rename) so an interrupted checkpoint
 * never clobbers the previous good one.
 */

#ifndef CIDRE_CORE_CHECKPOINT_H
#define CIDRE_CORE_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "trace/trace_view.h"

namespace cidre::core {

/** On-disk header of a `.ckpt` file. */
struct CheckpointHeader
{
    char magic[8];                  //!< "CIDRECKP"
    std::uint32_t version;          //!< kCheckpointVersion
    std::uint32_t header_bytes;     //!< sizeof(CheckpointHeader)
    std::uint64_t file_bytes;       //!< header + payload
    std::uint64_t payload_checksum; //!< traceImageChecksum(payload)
    std::uint64_t fingerprint;      //!< checkpointFingerprint(...)
};
static_assert(sizeof(CheckpointHeader) == 40,
              "on-disk checkpoint header layout must not change silently");

inline constexpr std::uint32_t kCheckpointVersion = 1;

/**
 * Digest of the run configuration a checkpoint belongs to: engine
 * config (cluster shape, seeds, knobs), policy bundle name and the
 * workload's function/request counts.  Two runs that would diverge
 * produce different fingerprints; restore refuses on mismatch.
 */
std::uint64_t checkpointFingerprint(const EngineConfig &config,
                                    const std::string &policy_name,
                                    trace::TraceView workload);

/**
 * Write @p payload to @p path atomically (tmp + rename).
 * @throws std::runtime_error on I/O failure.
 */
void writeCheckpointFile(const std::string &path, std::uint64_t fingerprint,
                         const std::vector<std::byte> &payload);

/**
 * Read and validate a `.ckpt` file, returning its payload.
 * @throws std::runtime_error on a missing/truncated/corrupt file or a
 *         fingerprint mismatch, with the offending path in the message.
 */
std::vector<std::byte> readCheckpointFile(const std::string &path,
                                          std::uint64_t expected_fingerprint);

/**
 * An in-memory checkpoint: the same envelope as a `.ckpt` file (header
 * with checksum + fingerprint, then the payload) held in a buffer
 * instead of on disk.  This is what lets a `tune` sweep fork thousands
 * of trials from one shared warm snapshot without any file I/O — the
 * buffer is built once per (cluster-shape, workload) equivalence class
 * and read concurrently by every trial in the class.  Immutable after
 * construction, so concurrent openCheckpointBuffer() calls are safe.
 */
struct CheckpointBuffer
{
    CheckpointHeader header{};
    std::vector<std::byte> payload;
};

/**
 * Seal @p payload into a validated in-memory checkpoint (the buffer
 * analogue of writeCheckpointFile).
 */
CheckpointBuffer makeCheckpointBuffer(std::uint64_t fingerprint,
                                      std::vector<std::byte> payload);

/**
 * Validate @p buffer exactly like readCheckpointFile validates a file —
 * magic, version, sizes, payload checksum, fingerprint — and return its
 * payload for a StateReader.  @throws std::runtime_error on corruption
 * or a fingerprint mismatch.
 */
const std::vector<std::byte> &
openCheckpointBuffer(const CheckpointBuffer &buffer,
                     std::uint64_t expected_fingerprint);

} // namespace cidre::core

#endif // CIDRE_CORE_CHECKPOINT_H
