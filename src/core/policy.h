/**
 * @file
 * Policy interfaces: the extension points of the orchestration engine.
 *
 * An orchestration policy is a bundle of three pluggable pieces:
 *
 *  - ScalingPolicy   — what to do with a request that finds no free warm
 *    slot (paper §3.2: cold start vs. delayed warm start vs. both);
 *  - KeepAlivePolicy — which idle containers to reclaim under memory
 *    pressure and which to expire over time (paper §3.3);
 *  - ClusterAgent    — optional proactive behaviour on a periodic tick
 *    (pre-warming, autoscaling, layer caches) plus provision-cost
 *    adjustment hooks used by the RainbowCake baseline.
 *
 * Policies receive the Engine by reference; they may read any state and
 * may mutate only their own bookkeeping (plus the per-container clock /
 * priority fields, which exist for them).  All structural mutation goes
 * through the engine's agent API (prewarm / reapContainer).
 *
 * ## Shard locality
 *
 * Under intra-trial sharding (core::ShardedEngine), every cell of the
 * partitioned cluster gets its own policy bundle, constructed from the
 * cell's EngineConfig and bound to the cell's engine.  A policy
 * therefore only ever observes one cell: its function population, its
 * workers, its tick.  Keep all policy state instance-local — no
 * globals, no statics shared across bundles — or concurrent cells
 * will race and break the shards-are-results-neutral guarantee.  Every
 * in-tree policy follows this rule.
 */

#ifndef CIDRE_CORE_POLICY_H
#define CIDRE_CORE_POLICY_H

#include <memory>
#include <string>
#include <vector>

#include "cluster/container.h"
#include "core/metrics.h"
#include "sim/time.h"
#include "trace/function_profile.h"
#include "trace/request.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::core {

class Engine;

/** What to do with a request that found no free warm slot. */
enum class ScalingDecision : std::uint8_t
{
    /**
     * Provision a new container and bind the request to it (vanilla
     * platforms: the request waits for *its* container even if another
     * becomes free earlier).
     */
    ColdStartBound,

    /**
     * Bind the request to one specific busy container's local queue
     * (the fixed-queue what-if of §2.4 / Fig. 7).
     */
    QueueBound,

    /**
     * Join the function's work-conserving channel without provisioning:
     * the delayed-warm-start-only path (CSS with BSS disabled).
     */
    Wait,

    /**
     * Join the channel AND provision speculatively; whichever resource
     * frees first serves the request (BSS, §3.2).
     */
    Speculative,
};

/** A scaling decision plus its optional target container. */
struct ScalingChoice
{
    ScalingDecision decision = ScalingDecision::ColdStartBound;
    /** Required for QueueBound: the busy container to queue behind. */
    cluster::ContainerId target = cluster::kInvalidContainer;
};

/** Decides between cold starts and (delayed) warm starts. */
class ScalingPolicy
{
  public:
    virtual ~ScalingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Called when @p request found no available container.  The engine
     * guards against starvation: a Wait/QueueBound choice is upgraded to
     * Speculative if the function has no busy or provisioning container
     * that could ever serve the channel.
     */
    virtual ScalingChoice onNoFreeContainer(Engine &engine,
                                            const trace::Request &request) = 0;

    /**
     * Outcome report for a speculatively provisioned container: it was
     * first reused (or evicted, @p reused false) @p idle_gap after its
     * provisioning completed.  CSS derives T_i from this (§3.2).
     */
    virtual void onSpeculativeOutcome(Engine &engine,
                                      trace::FunctionId function,
                                      sim::SimTime idle_gap, bool reused);

    /** A request began execution; CSS updates T_d on delayed warms. */
    virtual void onDispatch(Engine &engine, const trace::Request &request,
                            StartType type, sim::SimTime wait_us);

    /**
     * Opt in to Engine::busyCompletionView(): a per-function ordered
     * list of busy-container completion times, maintained incrementally
     * at dispatch/complete.  Off by default — the bookkeeping is pure
     * overhead for policies that never look at it.
     */
    virtual bool wantsBusyCompletionView() const { return false; }

    /**
     * Checkpoint/restore of policy-internal state.  Default: no state.
     * Stateful policies must serialize everything a resumed run needs
     * to stay bit-identical to an uninterrupted one; pure caches that
     * re-validate against engine epochs may be dropped.
     */
    virtual void saveState(sim::StateWriter &writer) const;
    virtual void loadState(sim::StateReader &reader);
};

/** A worker-local reclaim demand. */
struct ReclaimRequest
{
    cluster::WorkerId worker = 0;
    std::int64_t need_mb = 0;
    /** Function the reclaimed space is for (policies may special-case). */
    trace::FunctionId beneficiary = trace::kInvalidFunction;
    /** Container that must not be reclaimed (it is being restored). */
    cluster::ContainerId exclude = cluster::kInvalidContainer;
};

/** The containers a keep-alive policy chose to reclaim. */
struct ReclaimPlan
{
    std::vector<cluster::ContainerId> evict;
    /** CodeCrunch: shrink these instead of evicting (applied first). */
    std::vector<cluster::ContainerId> compress;

    void clear()
    {
        evict.clear();
        compress.clear();
    }
};

/** Decides which warm containers to keep, reclaim, or expire. */
class KeepAlivePolicy
{
  public:
    virtual ~KeepAlivePolicy() = default;

    virtual const char *name() const = 0;

    /**
     * A new container was admitted to the cache.  @p eviction_watermark
     * is the maximum priority among containers evicted to make room for
     * it (0 if none were) — the clock inheritance of Eq. 3 / GDSF.
     */
    virtual void onAdmit(Engine &engine, cluster::Container &container,
                         double eviction_watermark);

    /** A request was dispatched into @p container. */
    virtual void onUse(Engine &engine, cluster::Container &container,
                       StartType type);

    /** @p container just became idle (active dropped to zero). */
    virtual void onIdle(Engine &engine, cluster::Container &container);

    /**
     * Choose idle containers on @p request.worker freeing at least
     * @p request.need_mb, appending them to @p plan (passed in empty —
     * the engine reuses one plan buffer across reclaims so the hot path
     * never allocates).  The engine applies the plan only if it is
     * sufficient; otherwise the triggering provision is deferred.
     */
    virtual void planReclaim(Engine &engine, const ReclaimRequest &request,
                             ReclaimPlan &plan) = 0;

    /** @p container was evicted (for any reason). */
    virtual void onEvicted(Engine &engine,
                           const cluster::Container &container);

    /**
     * Periodic expiry hook (maintenance tick): append ids of idle
     * containers to reap (e.g. TTL expiration) to @p out.
     */
    virtual void collectExpired(Engine &engine, sim::SimTime now,
                                std::vector<cluster::ContainerId> &out);

    /**
     * Checkpoint/restore of policy-internal state.  Default: no state.
     * Stateful policies must serialize everything a resumed run needs
     * to stay bit-identical to an uninterrupted one; pure caches that
     * re-validate against engine epochs may be dropped.
     */
    virtual void saveState(sim::StateWriter &writer) const;
    virtual void loadState(sim::StateReader &reader);
};

/** Optional proactive component (pre-warming, autoscaling, layers). */
class ClusterAgent
{
  public:
    virtual ~ClusterAgent() = default;

    virtual const char *name() const = 0;

    /** Runs every EngineConfig::maintenance_interval. */
    virtual void onTick(Engine &engine, sim::SimTime now);

    /** Observes every arrival (before dispatch). */
    virtual void onRequestObserved(Engine &engine,
                                   const trace::Request &request);

    /**
     * Adjust the provisioning latency of a cold start (RainbowCake:
     * subtract the cost of layers already cached on @p worker).
     */
    virtual sim::SimTime provisionCost(Engine &engine,
                                       const trace::FunctionProfile &function,
                                       cluster::WorkerId worker,
                                       sim::SimTime base_cost);

    /** A container was evicted (layer caches may salvage pieces). */
    virtual void onContainerEvicted(Engine &engine,
                                    const cluster::Container &container);

    /**
     * Checkpoint/restore of policy-internal state.  Default: no state.
     * Stateful policies must serialize everything a resumed run needs
     * to stay bit-identical to an uninterrupted one; pure caches that
     * re-validate against engine epochs may be dropped.
     */
    virtual void saveState(sim::StateWriter &writer) const;
    virtual void loadState(sim::StateReader &reader);
};

/** A complete, named orchestration policy bundle. */
struct OrchestrationPolicy
{
    std::string name;
    std::unique_ptr<ScalingPolicy> scaling;
    std::unique_ptr<KeepAlivePolicy> keep_alive;
    std::unique_ptr<ClusterAgent> agent; //!< may be null
};

} // namespace cidre::core

#endif // CIDRE_CORE_POLICY_H
