#include "core/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::core {

const char *
startTypeName(StartType type)
{
    switch (type) {
      case StartType::Warm:
        return "warm";
      case StartType::DelayedWarm:
        return "delayed-warm";
      case StartType::Cold:
        return "cold";
      case StartType::Restored:
        return "restored";
      case StartType::kCount:
        break;
    }
    throw std::invalid_argument("startTypeName: bad type");
}

RunMetrics::RunMetrics()
    : overhead_us_(0.01), e2e_us_(0.01)
{
}

void
RunMetrics::recordStart(StartType type, sim::SimTime wait_us,
                        sim::SimTime exec_us)
{
    const auto idx = static_cast<std::size_t>(type);
    ++counts_.at(idx);
    const auto wait = static_cast<double>(wait_us);
    const auto exec = static_cast<double>(exec_us);
    wait_by_type_[idx].add(wait);
    overhead_all_.add(wait);
    overhead_us_.add(wait);
    e2e_us_.add(wait + exec);
    // Overhead ratio definition from §2.4: wait / (wait + exec).  A
    // zero-duration request with zero wait counts as 0 overhead.
    overhead_ratio_.add(wait + exec > 0.0 ? wait / (wait + exec) : 0.0);
}

void
RunMetrics::noteMemoryUsage(sim::SimTime now, std::int64_t used_mb)
{
    if (now < last_memory_change_)
        throw std::logic_error("RunMetrics: time went backwards");
    mb_time_integral_ += static_cast<double>(current_used_mb_) *
        static_cast<double>(now - last_memory_change_);
    last_memory_change_ = now;
    current_used_mb_ = used_mb;
    peak_used_mb_ = std::max(peak_used_mb_, used_mb);
}

void
RunMetrics::finalize(sim::SimTime now)
{
    if (finalized_)
        return;
    noteMemoryUsage(now, current_used_mb_);
    makespan_ = now;
    finalized_ = true;
}

void
RunMetrics::mergeAggregates(const RunMetrics &other)
{
    containers_created += other.containers_created;
    provisioned_mb += other.provisioned_mb;
    evictions += other.evictions;
    expirations += other.expirations;
    compressions += other.compressions;
    prewarms += other.prewarms;
    wasted_cold_starts += other.wasted_cold_starts;
    deferred_provisions += other.deferred_provisions;
    cancelled_provisions += other.cancelled_provisions;
    slo_violations += other.slo_violations;

    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
        wait_by_type_[i].merge(other.wait_by_type_[i]);
    }
    overhead_ratio_.merge(other.overhead_ratio_);
    overhead_all_.merge(other.overhead_all_);
    overhead_us_.merge(other.overhead_us_);
    e2e_us_.merge(other.e2e_us_);

    mb_time_integral_ += other.mb_time_integral_;
}

void
RunMetrics::merge(const RunMetrics &other)
{
    if (!finalized_ || !other.finalized_)
        throw std::logic_error("RunMetrics::merge: both runs must be"
                               " finalized");
    if (&other == this)
        throw std::logic_error("RunMetrics::merge: self-merge");

    mergeAggregates(other);
    outcomes.insert(outcomes.end(), other.outcomes.begin(),
                    other.outcomes.end());
    peak_used_mb_ = std::max(peak_used_mb_, other.peak_used_mb_);
    // Total simulated time: keeps avgMemoryGb() the time-weighted mean
    // of the merged runs.
    makespan_ += other.makespan_;
}

void
RunMetrics::mergeConcurrent(const RunMetrics &other)
{
    if (!finalized_ || !other.finalized_)
        throw std::logic_error("RunMetrics::mergeConcurrent: both runs"
                               " must be finalized");
    if (&other == this)
        throw std::logic_error("RunMetrics::mergeConcurrent: self-merge");

    mergeAggregates(other);
    // Cells coexist in time: the spans overlay (max) and per-cell peaks
    // can only bound the cluster-wide peak from above (sum).
    peak_used_mb_ += other.peak_used_mb_;
    makespan_ = std::max(makespan_, other.makespan_);
}

std::uint64_t
RunMetrics::count(StartType type) const
{
    return counts_.at(static_cast<std::size_t>(type));
}

std::uint64_t
RunMetrics::total() const
{
    std::uint64_t sum = 0;
    for (const auto c : counts_)
        sum += c;
    return sum;
}

double
RunMetrics::ratio(StartType type) const
{
    const auto n = total();
    return n == 0
        ? 0.0
        : static_cast<double>(count(type)) / static_cast<double>(n);
}

double
RunMetrics::warmRatio() const
{
    return ratio(StartType::Warm) + ratio(StartType::Restored);
}

double
RunMetrics::avgOverheadRatioPct() const
{
    return overhead_ratio_.mean() * 100.0;
}

double
RunMetrics::avgOverheadMs() const
{
    return overhead_all_.mean() / 1e3;
}

double
RunMetrics::avgWaitMs(StartType type) const
{
    return wait_by_type_.at(static_cast<std::size_t>(type)).mean() / 1e3;
}

double
RunMetrics::avgMemoryGb() const
{
    if (makespan_ <= 0)
        return static_cast<double>(current_used_mb_) / 1024.0;
    return mb_time_integral_ / static_cast<double>(makespan_) / 1024.0;
}

double
RunMetrics::peakMemoryGb() const
{
    return static_cast<double>(peak_used_mb_) / 1024.0;
}

void
RunMetrics::saveState(sim::StateWriter &writer) const
{
    writer.put(containers_created);
    writer.put(provisioned_mb);
    writer.put(evictions);
    writer.put(expirations);
    writer.put(compressions);
    writer.put(prewarms);
    writer.put(wasted_cold_starts);
    writer.put(deferred_provisions);
    writer.put(cancelled_provisions);
    writer.put(slo_violations);
    for (const std::uint64_t count : counts_)
        writer.put(count);
    for (const stats::OnlineSummary &summary : wait_by_type_)
        summary.saveState(writer);
    overhead_ratio_.saveState(writer);
    overhead_all_.saveState(writer);
    overhead_us_.saveState(writer);
    e2e_us_.saveState(writer);
    writer.put(mb_time_integral_);
    writer.put(current_used_mb_);
    writer.put(peak_used_mb_);
    writer.put(last_memory_change_);
    writer.put(makespan_);
    writer.put(finalized_);
    writer.putVector(outcomes);
    timeline.memory_mb.saveState(writer);
    timeline.cold_starts.saveState(writer);
    timeline.delayed_warms.saveState(writer);
    timeline.provisions.saveState(writer);
}

void
RunMetrics::loadState(sim::StateReader &reader)
{
    containers_created = reader.get<std::uint64_t>();
    provisioned_mb = reader.get<std::uint64_t>();
    evictions = reader.get<std::uint64_t>();
    expirations = reader.get<std::uint64_t>();
    compressions = reader.get<std::uint64_t>();
    prewarms = reader.get<std::uint64_t>();
    wasted_cold_starts = reader.get<std::uint64_t>();
    deferred_provisions = reader.get<std::uint64_t>();
    cancelled_provisions = reader.get<std::uint64_t>();
    slo_violations = reader.get<std::uint64_t>();
    for (std::uint64_t &count : counts_)
        count = reader.get<std::uint64_t>();
    for (stats::OnlineSummary &summary : wait_by_type_)
        summary.loadState(reader);
    overhead_ratio_.loadState(reader);
    overhead_all_.loadState(reader);
    overhead_us_.loadState(reader);
    e2e_us_.loadState(reader);
    mb_time_integral_ = reader.get<double>();
    current_used_mb_ = reader.get<std::int64_t>();
    peak_used_mb_ = reader.get<std::int64_t>();
    last_memory_change_ = reader.get<sim::SimTime>();
    makespan_ = reader.get<sim::SimTime>();
    finalized_ = reader.get<bool>();
    outcomes = reader.getVector<RequestOutcome>();
    timeline.memory_mb.loadState(reader);
    timeline.cold_starts.loadState(reader);
    timeline.delayed_warms.loadState(reader);
    timeline.provisions.loadState(reader);
}

} // namespace cidre::core
