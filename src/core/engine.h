/**
 * @file
 * The FaaS orchestration engine: an event-driven simulator of the
 * container lifecycle under a pluggable orchestration policy.
 *
 * The engine implements the mechanism (Figure 11 / Algorithm 2 of the
 * paper) and delegates every decision to the policy bundle:
 *
 *  1. An arriving request is dispatched into a free warm slot if one
 *     exists (true warm start).
 *  2. Otherwise the ScalingPolicy chooses: bind to a new container
 *     (vanilla cold start), bind to a busy container's queue (fixed
 *     queue), wait in the function's work-conserving channel, or wait
 *     AND provision speculatively (BSS/CSS).
 *  3. Channel requests are served by whichever resource frees first —
 *     a busy container finishing (delayed warm start) or a provision
 *     completing (cold start).
 *  4. Provisioning requires worker memory; the KeepAlivePolicy plans
 *     reclaims (REPLACE of Algorithm 2).  Insufficient reclaimable space
 *     defers the provision until memory frees.
 *  5. A maintenance tick drives TTL expiry and proactive agents.
 */

#ifndef CIDRE_CORE_ENGINE_H
#define CIDRE_CORE_ENGINE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/cluster.h"
#include "core/config.h"
#include "core/function_state.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "trace/trace_view.h"

namespace cidre::core {

/** Event-driven FaaS cluster simulator. */
class Engine
{
  public:
    /**
     * @param workload a view of a sealed trace (borrowed: the backing
     *                 Trace or TraceImage must outlive the engine).
     *                 Accepts a Trace lvalue via implicit conversion.
     */
    Engine(trace::TraceView workload, EngineConfig config,
           OrchestrationPolicy policy);

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Run the whole trace to completion and return the metrics.
     * Throws std::logic_error if any request failed to complete (which
     * would indicate an engine or policy bug, not a workload property).
     * Equivalent to begin() + finish().
     */
    RunMetrics run();

    // ---- stepped execution (benchmarks, allocation tests) ----------------

    /**
     * Arm the simulation (schedules the first arrival and maintenance
     * tick) without executing any event.  Single-shot, like run().
     */
    void begin();

    /**
     * Execute every event up to and including @p until (simulated time).
     * @return the number of events executed.
     */
    std::size_t stepUntil(sim::SimTime until);

    /** Drain the remaining events and return the metrics (see run()). */
    RunMetrics finish();

    /**
     * True once begin() ran and no runnable event remains — i.e. a
     * stepUntil() loop has fully drained the simulation.  Used by the
     * sharded runtime to terminate its lockstep epochs.
     */
    bool drained() const { return ran_ && queue_.empty(); }

    // ---- live (stream-driven) execution ---------------------------------

    /**
     * Arm the engine for stream-driven execution: requests are not read
     * from the trace's request columns but admitted one at a time via
     * admit(), in arrival order.  The workload view still provides the
     * function table and profiles.  Single-shot, mutually exclusive
     * with begin()/run(); per-request recording and checkpointing are
     * not supported in live mode.
     *
     * Determinism bridge: a live run admitted a trace's exact arrival
     * sequence executes the exact event interleaving of begin()/
     * finish() on that trace — the admission's place among equal-time
     * events is *reserved* at the same program point where trace mode
     * schedules the next arrival (see sim::EventQueue::reserveSeq), so
     * metrics and RNG draws are bit-identical.
     */
    void beginLive();

    /**
     * Admit one request into the live simulation: the orchestration
     * decision (placement, scaling, queueing) runs synchronously before
     * this returns, as do any pending simulated events (completions,
     * maintenance ticks) ordered before the admission.  @p when must be
     * nondecreasing across admissions and not behind the virtual clock.
     * @return the admitted request's index.
     */
    std::uint64_t admit(sim::SimTime when, trace::FunctionId function,
                        sim::SimTime exec_us);

    /**
     * Declare the stream finished: no further admit() calls.  Pending
     * simulated work (in-flight executions, queued requests) then
     * drains through stepUntil()/finish() exactly like a trace run
     * whose arrivals ran out.
     */
    void closeStream();

    /** True when the engine was armed with beginLive(). */
    bool liveMode() const { return live_; }

    /** Requests admitted so far (live mode). */
    std::uint64_t admittedCount() const { return live_requests_.size(); }

    // ---- read access for policies --------------------------------------

    sim::SimTime now() const { return queue_.now(); }
    const EngineConfig &config() const { return config_; }
    const trace::TraceView &workload() const { return trace_; }
    cluster::Cluster &clusterRef() { return cluster_; }
    const cluster::Cluster &clusterRef() const { return cluster_; }
    RunMetrics &metrics() { return metrics_; }

    FunctionState &functionState(trace::FunctionId id)
    {
        return states_.at(id);
    }
    const FunctionState &functionState(trace::FunctionId id) const
    {
        return states_.at(id);
    }

    /** Idle (reclaimable) containers currently on @p worker. */
    const std::vector<cluster::ContainerId> &
    idleContainersOn(cluster::WorkerId worker) const
    {
        return worker_idle_.at(worker);
    }

    /**
     * Modification epoch of @p worker's idle list: bumped on every
     * membership change.  Policies use it to validate incrementally
     * maintained eviction rankings (a matching epoch guarantees the
     * list's membership is unchanged since the ranking was built).
     */
    std::uint64_t idleEpoch(cluster::WorkerId worker) const
    {
        return worker_idle_epoch_.at(worker);
    }

    /** Simulation events executed so far (throughput telemetry). */
    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

    /**
     * Timestamp of the next runnable event, or sim::kTimeInfinity when
     * drained.  Lets a stepped driver jump its epoch boundary straight
     * to the next event instead of sweeping empty simulated time.
     */
    sim::SimTime nextEventTime() const { return queue_.peekTime(); }

    /**
     * T_e estimate: the configured percentile (or mean) of the recent
     * execution-time window; falls back to the profile's median when no
     * history exists yet.
     */
    sim::SimTime estimateExecTime(trace::FunctionId id) const;

    /** T_p estimate: median recent cold-start latency (profile fallback). */
    sim::SimTime estimateColdTime(trace::FunctionId id) const;

    // ---- oracle access (Offline policies only) --------------------------

    /** Next trace arrival of @p id strictly after @p t (or infinity). */
    sim::SimTime nextArrivalAfter(trace::FunctionId id, sim::SimTime t) const;

    /**
     * Ascending completion times of the active executions of @p id,
     * maintained incrementally (no per-call work).  Only available when
     * the scaling policy opted in via wantsBusyCompletionView().
     */
    const std::vector<sim::SimTime> &
    busyCompletionView(trace::FunctionId id) const;

    // ---- agent API ------------------------------------------------------

    /**
     * Proactively provision a container for @p id (pre-warming).
     * @return false if no worker had (or could reclaim) the memory.
     */
    bool prewarm(trace::FunctionId id);

    /** Evict an idle container (agent-driven deactivation / expiry). */
    void reapContainer(cluster::ContainerId id, bool expired);

    // ---- checkpoint/restore ---------------------------------------------

    /** Trace requests whose arrival event has been scheduled so far. */
    std::uint64_t arrivalCursor() const { return arrival_cursor_; }

    /**
     * Serialize the complete mutable simulation state — cursors, RNG,
     * pending events, cluster, per-function state, metrics and the
     * policy bundle — such that loadState() on a freshly-constructed
     * engine (same workload, config and policy) resumes bit-identically
     * to the uninterrupted run.  Must be called at a quiescent point
     * (between events, i.e. outside stepUntil()).
     */
    void saveState(sim::StateWriter &writer) const;

    /**
     * Restore a checkpoint written by saveState().  The engine must be
     * freshly constructed (begin() not called) with the same workload,
     * config and policy bundle; afterwards stepUntil()/finish() continue
     * exactly where the checkpointed run left off.  Throws
     * std::logic_error on reuse and std::runtime_error on a payload
     * that does not match this engine's shape.
     */
    void loadState(sim::StateReader &reader);

    // ---- fork-point mutation (tune sweeps) ------------------------------

    /**
     * Replace the policy bundle mid-run (the `tune` fork point): the new
     * bundle starts with fresh internal state and rebuilds its rankings
     * lazily from the engine-owned idle lists and windows, exactly as if
     * it had been restored from a checkpoint with empty policy state.
     * Deterministic: a warm-forked trial and a cold trial that swap at
     * the same instant see identical engine state, so their suffixes are
     * bit-identical.  Must be called at a quiescent point (between
     * events).  Throws std::invalid_argument on an incomplete bundle and
     * std::logic_error when the new scaling policy wants the
     * busy-completion view but the outgoing one did not maintain it
     * (the per-function busy-end history cannot be reconstructed).
     */
    void swapPolicy(OrchestrationPolicy policy);

    /**
     * Reseed the engine RNG (tune forks: per-trial substreams keyed by
     * the *stable trial id*, applied identically on the warm and cold
     * paths so the two stay bit-identical).
     */
    void reseed(std::uint64_t seed);

    /**
     * Change the T_e percentile knob mid-run (tune fork knob).  The
     * memoized window estimates are invalidated so no value computed
     * under the old percentile survives.
     */
    void setTePercentile(double percentile);

  private:
    struct DeferredProvision
    {
        trace::FunctionId function;
        cluster::ProvisionReason reason;
        std::int64_t bound_request; //!< trace request index or -1
    };

    /** One admitted request of a live run (see beginLive()). */
    struct LiveRequest
    {
        trace::FunctionId function;
        sim::SimTime arrival_us;
        sim::SimTime exec_us;
    };

    /** Rebuild the callback of a checkpointed pending event. */
    sim::EventCallback eventFromTag(const sim::EventTag &tag);

    /**
     * The request at @p index: a trace request column read in trace
     * mode, an admitted record in live mode.  The single seam through
     * which every handler resolves request payloads.
     */
    trace::Request requestAt(std::uint64_t index) const;

    // Event handlers.
    void handleArrival(std::uint64_t request_index);
    void handleProvisionComplete(cluster::ContainerId id);
    void handleExecutionComplete(cluster::ContainerId id,
                                 std::uint64_t request_index);
    void handleMaintenance();

    void scheduleNextArrival();
    void scheduleTickIfNeeded();
    bool hasPendingWork() const;

    /** Dispatch a request into a container and start its execution. */
    void dispatch(cluster::Container &c, std::uint64_t request_index,
                  StartType type);

    /** Fill free slots of @p c from its bound queue / function channel. */
    void drainQueuesInto(cluster::Container &c, StartType type);

    /**
     * PerHead speculation: re-run the scaling decision for the new
     * channel head (once per head) and provision if it asks to.
     */
    void evaluateChannelHead(FunctionState &fs);

    /**
     * Provision a container for @p function, deferring on memory
     * exhaustion.
     */
    void provision(trace::FunctionId function,
                   cluster::ProvisionReason reason,
                   std::int64_t bound_request);

    /** Attempt to start provisioning right now. @return success. */
    bool tryStartProvision(const DeferredProvision &req);

    /**
     * Fill @p order with the worker visiting sequence for a provision,
     * per the placement policy.  Single-worker clusters skip the sort.
     */
    void buildPlacementOrder(std::vector<cluster::WorkerId> &order,
                             std::uint64_t round_robin_cursor) const;

    /**
     * Reclaim (via the keep-alive policy) until @p need_mb fit on
     * @p worker, in bounded rounds.  @p watermark accumulates the max
     * evicted priority; @p exclude is never reclaimed (used when making
     * room to inflate a compressed container).
     * @return true if the space is available afterwards.
     */
    bool ensureFreeOn(cluster::WorkerId worker, std::int64_t need_mb,
                      double &watermark,
                      cluster::ContainerId exclude =
                          cluster::kInvalidContainer,
                      trace::FunctionId beneficiary =
                          trace::kInvalidFunction);

    /** Re-attempt deferred provisions (FIFO) after memory freed. */
    void retryDeferred();

    /** Begin restoring a compressed container for a bound request. */
    void startRestore(cluster::Container &c, std::uint64_t request_index);

    /** Find a compressed container of @p fs that fits its inflation. */
    cluster::Container *findRestorableContainer(FunctionState &fs);

    void evictContainer(cluster::ContainerId id, bool expired);

    void addToWorkerIdle(cluster::Container &c);
    void removeFromWorkerIdle(cluster::Container &c);

    void noteMemory();

    /** Report the T_i outcome for a tracked speculative container. */
    void reportSpeculativeOutcome(FunctionState &fs, cluster::Container &c,
                                  bool reused);

    trace::TraceView trace_;
    EngineConfig config_;
    OrchestrationPolicy policy_;
    cluster::Cluster cluster_;
    sim::EventQueue queue_;
    sim::Rng rng_;
    std::vector<FunctionState> states_;
    std::vector<std::vector<cluster::ContainerId>> worker_idle_;
    /** Per-worker idle-list modification counters (see idleEpoch()). */
    std::vector<std::uint64_t> worker_idle_epoch_;
    std::deque<DeferredProvision> deferred_;
    RunMetrics metrics_;

    // Reusable hot-path scratch: leased (moved out and back) by the
    // functions that fill them, so steady-state operation performs no
    // per-call vector allocation even if a policy callback re-enters.
    std::vector<cluster::WorkerId> placement_scratch_;
    std::vector<cluster::ContainerId> compress_scratch_;
    std::vector<cluster::ContainerId> evict_scratch_;
    std::vector<cluster::ContainerId> expired_scratch_;
    ReclaimPlan plan_scratch_;

    /** Admitted requests of a live run (indexed like trace requests). */
    std::vector<LiveRequest> live_requests_;
    /** Reserved queue position of the next admission (live mode). */
    std::uint64_t live_next_seq_ = 0;

    std::uint64_t arrival_cursor_ = 0;
    std::uint64_t round_robin_cursor_ = 0;
    /** Live compressed containers (gates the restore-path scan). */
    std::int64_t compressed_live_ = 0;
    std::uint64_t outstanding_requests_ = 0;
    std::uint64_t completed_requests_ = 0;
    bool in_retry_ = false;
    bool tick_scheduled_ = false;
    bool ran_ = false;
    /** Stream-driven run (beginLive()). */
    bool live_ = false;
    /** closeStream() was called: the live arrival stream has ended. */
    bool stream_closed_ = false;
    /** Scaling policy opted into the per-function busy-end view. */
    bool track_busy_ends_ = false;
};

} // namespace cidre::core

#endif // CIDRE_CORE_ENGINE_H
