#include "core/function_state.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::core {

namespace {

/**
 * Swap-erase @p c from @p list using the intrusive index @p slot_member,
 * fixing up the index of the element swapped into its place.
 */
template <auto SlotMember>
void
swapErase(std::vector<cluster::ContainerId> &list, cluster::Container &c,
          std::deque<cluster::Container> &slab)
{
    const std::int32_t slot = c.*SlotMember;
    if (slot < 0 || static_cast<std::size_t>(slot) >= list.size() ||
        list[static_cast<std::size_t>(slot)] != c.id) {
        throw std::logic_error("FunctionState: corrupt membership index");
    }
    const auto idx = static_cast<std::size_t>(slot);
    list[idx] = list.back();
    slab[list[idx]].*SlotMember = slot;
    list.pop_back();
    c.*SlotMember = -1;
}

} // namespace

FunctionState::FunctionState(trace::FunctionId id,
                             sim::SimTime window_horizon,
                             std::size_t window_cap)
    : id_(id),
      exec_window_(window_horizon, window_cap),
      cold_window_(window_horizon, window_cap),
      arrival_window_(window_horizon, window_cap)
{
}

void
FunctionState::addAvailable(cluster::Container &c)
{
    assert(c.avail_slot < 0);
    c.avail_slot = static_cast<std::int32_t>(available_.size());
    available_.push_back(c.id);
}

void
FunctionState::removeAvailable(cluster::Container &c,
                               std::deque<cluster::Container> &slab)
{
    swapErase<&cluster::Container::avail_slot>(available_, c, slab);
}

bool
FunctionState::isAvailable(const cluster::Container &c) const
{
    return c.avail_slot >= 0;
}

void
FunctionState::addCached(cluster::Container &c)
{
    assert(c.cached_slot < 0);
    c.cached_slot = static_cast<std::int32_t>(cached_.size());
    cached_.push_back(c.id);
    ++priority_epoch_; // |F(c)| of Eq. 3 changed
}

void
FunctionState::removeCached(cluster::Container &c,
                            std::deque<cluster::Container> &slab)
{
    swapErase<&cluster::Container::cached_slot>(cached_, c, slab);
    ++priority_epoch_;
}

void
FunctionState::busyEndInsert(sim::SimTime t)
{
    busy_ends_.insert(
        std::upper_bound(busy_ends_.begin(), busy_ends_.end(), t), t);
}

void
FunctionState::busyEndErase(sim::SimTime t)
{
    const auto it =
        std::lower_bound(busy_ends_.begin(), busy_ends_.end(), t);
    if (it == busy_ends_.end() || *it != t)
        throw std::logic_error("FunctionState: busy-end view out of sync");
    busy_ends_.erase(it);
}

void
FunctionState::noteBusy(bool became_busy)
{
    if (became_busy) {
        ++busy_count_;
    } else {
        if (busy_count_ == 0)
            throw std::logic_error("FunctionState: busy count underflow");
        --busy_count_;
    }
}

void
FunctionState::noteProvisioning(bool started)
{
    if (started) {
        ++provisioning_count_;
    } else {
        if (provisioning_count_ == 0)
            throw std::logic_error("FunctionState: provisioning underflow");
        --provisioning_count_;
    }
}

void
FunctionState::noteArrival(sim::SimTime now)
{
    ++total_invocations_;
    if (first_request_at_ < 0)
        first_request_at_ = now;
    ++priority_epoch_; // n_F of Eq. 4 changed
    arrival_window_.add(now, static_cast<double>(now));
}

double
FunctionState::freqPerMinute(sim::SimTime now) const
{
    if (first_request_at_ < 0 || total_invocations_ == 0)
        return 0.0;
    // Eq. 4: n_F / minutes since the first request.  Clamp the horizon
    // to one minute so brand-new functions don't get unbounded rates.
    const double mins =
        std::max(1.0, sim::toMin(now - first_request_at_));
    return static_cast<double>(total_invocations_) / mins;
}

void
FunctionState::saveState(sim::StateWriter &writer) const
{
    writer.put(bss_enabled);
    writer.put(t_i_us);
    writer.put(t_d_us);
    writer.put(tracked_spec_container);
    writer.put(tracked_spec_ready_at);
    writer.put(last_head_evaluated);
    writer.putVector(available_);
    writer.putVector(cached_);
    writer.put(busy_count_);
    writer.put(provisioning_count_);
    writer.put<std::uint64_t>(channel_.size());
    for (const PendingRequest &pending : channel_)
        writer.put(pending);
    writer.put(total_invocations_);
    writer.put(first_request_at_);
    writer.put(priority_epoch_);
    writer.putVector(busy_ends_);
    exec_window_.saveState(writer);
    cold_window_.saveState(writer);
    arrival_window_.saveState(writer);
}

void
FunctionState::loadState(sim::StateReader &reader)
{
    bss_enabled = reader.get<bool>();
    t_i_us = reader.get<double>();
    t_d_us = reader.get<double>();
    tracked_spec_container = reader.get<cluster::ContainerId>();
    tracked_spec_ready_at = reader.get<sim::SimTime>();
    last_head_evaluated = reader.get<std::uint64_t>();
    available_ = reader.getVector<cluster::ContainerId>();
    cached_ = reader.getVector<cluster::ContainerId>();
    busy_count_ = reader.get<std::uint32_t>();
    provisioning_count_ = reader.get<std::uint32_t>();
    const auto pending_count = reader.get<std::uint64_t>();
    channel_.clear();
    for (std::uint64_t i = 0; i < pending_count; ++i)
        channel_.push_back(reader.get<PendingRequest>());
    total_invocations_ = reader.get<std::uint64_t>();
    first_request_at_ = reader.get<sim::SimTime>();
    priority_epoch_ = reader.get<std::uint64_t>();
    busy_ends_ = reader.getVector<sim::SimTime>();
    exec_window_.loadState(reader);
    cold_window_.loadState(reader);
    arrival_window_.loadState(reader);
    te_cache_ = EstimateCache{};
    tp_cache_ = EstimateCache{};
}

} // namespace cidre::core
