#include "core/sharded_engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "sim/rng.h"

namespace cidre::core {

namespace {

/** Per-worker capacities of the full cluster (worker 0 absorbs the
 *  division remainder, mirroring cluster::Cluster's own split). */
std::vector<std::int64_t>
fullClusterCapacities(const cluster::ClusterConfig &cfg)
{
    const auto per_worker =
        cfg.total_memory_mb / static_cast<std::int64_t>(cfg.workers);
    std::vector<std::int64_t> caps(cfg.workers, per_worker);
    caps[0] += cfg.total_memory_mb % static_cast<std::int64_t>(cfg.workers);
    return caps;
}

} // namespace

ShardPlan
buildShardPlan(trace::TraceView workload, const EngineConfig &config)
{
    if (!workload.valid())
        throw std::invalid_argument("buildShardPlan: unbound workload view");
    config.validate();

    const auto cells = config.shard_cells;
    ShardPlan plan;
    plan.cells.resize(cells);
    plan.cell_of_function.assign(workload.functionCount(), 0);

    // Contiguous worker slices; the first (workers % cells) cells take
    // one extra worker.  Cell memory mirrors the monolithic split: the
    // per-worker capacities are passed to the cell *explicitly* (via
    // ClusterConfig::worker_memory_mb), so each worker keeps exactly
    // the capacity it would have in the full cluster — handing the cell
    // only a total would let cluster::Cluster re-split it and shift the
    // division remainder onto the cell's first worker.
    const auto caps = config.cluster.worker_memory_mb.empty()
        ? fullClusterCapacities(config.cluster)
        : config.cluster.worker_memory_mb;
    std::uint32_t next_worker = 0;
    for (std::uint32_t k = 0; k < cells; ++k) {
        auto &cell = plan.cells[k];
        cell.first_worker = next_worker;
        cell.worker_count = config.cluster.workers / cells +
            (k < config.cluster.workers % cells ? 1U : 0U);
        next_worker += cell.worker_count;

        cell.cluster.workers = cell.worker_count;
        const auto first_cap = caps.begin() + cell.first_worker;
        cell.cluster.worker_memory_mb.assign(
            first_cap, first_cap + cell.worker_count);
        cell.cluster.total_memory_mb = 0;
        for (std::uint32_t w = 0; w < cell.worker_count; ++w)
            cell.cluster.total_memory_mb += caps[cell.first_worker + w];
        if (!config.cluster.speed_factors.empty()) {
            const auto first = config.cluster.speed_factors.begin() +
                cell.first_worker;
            cell.cluster.speed_factors.assign(first,
                                              first + cell.worker_count);
        }
    }

    // Longest-processing-time assignment of functions to cells, keyed
    // by request count: heaviest function first into the least-loaded
    // cell.  Ties break to the lower function id (sort) and the lower
    // cell index (scan), keeping the plan a pure function of the trace.
    const auto counts = workload.requestCountByFunction();
    std::vector<trace::FunctionId> order(workload.functionCount());
    std::iota(order.begin(), order.end(), trace::FunctionId{0});
    std::sort(order.begin(), order.end(),
              [&counts](trace::FunctionId a, trace::FunctionId b) {
                  if (counts[a] != counts[b])
                      return counts[a] > counts[b];
                  return a < b;
              });
    for (const auto fn : order) {
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < cells; ++k)
            if (plan.cells[k].request_weight <
                plan.cells[best].request_weight)
                best = k;
        plan.cell_of_function[fn] = best;
        plan.cells[best].functions.push_back(fn);
        plan.cells[best].request_weight += counts[fn];
    }
    for (auto &cell : plan.cells)
        std::sort(cell.functions.begin(), cell.functions.end());

    return plan;
}

ShardedEngine::ShardedEngine(trace::TraceView workload,
                             EngineConfig config,
                             PolicyFactory policy_factory)
    : trace_(workload), config_(std::move(config))
{
    if (!policy_factory)
        throw std::invalid_argument("ShardedEngine: null policy factory");
    plan_ = buildShardPlan(trace_, config_);

    // Sized exactly once: sub-traces (and the views the engines borrow
    // over them) live inside the cells, so the vector must never
    // reallocate after this point.
    cells_.resize(plan_.cells.size());

    if (plan_.cells.size() == 1) {
        // Pass-through: the original workload view, the original seed,
        // the original cluster — byte-identical to the plain Engine,
        // and zero-copy (the cell borrows the same backing pages).
        auto cell_config = config_;
        cell_config.shard_cells = 1;
        cells_[0].workload = trace_;
        cells_[0].engine = std::make_unique<Engine>(
            trace_, cell_config, policy_factory(cell_config));
        return;
    }

    // Build each cell's sub-trace.  Functions are added in ascending
    // original-id order; requests in original (sealed) order, so the
    // sub-trace's stable sort preserves the identity mapping between
    // a cell request's index and its slot in orig_request.
    std::vector<trace::FunctionId> local_id(trace_.functionCount(), 0);
    for (std::size_t k = 0; k < plan_.cells.size(); ++k) {
        auto &cell = cells_[k];
        cell.orig_request.reserve(plan_.cells[k].request_weight);
        for (const auto fn : plan_.cells[k].functions)
            local_id[fn] = cell.sub_trace.addFunction(trace_.function(fn));
    }
    for (std::uint64_t i = 0; i < trace_.requestCount(); ++i) {
        const auto fn = trace_.requestFunction(i);
        const auto k = plan_.cell_of_function[fn];
        cells_[k].sub_trace.addRequest(local_id[fn], trace_.arrivalUs(i),
                                       trace_.execUs(i));
        cells_[k].orig_request.push_back(i);
    }

    for (std::size_t k = 0; k < cells_.size(); ++k) {
        auto &cell = cells_[k];
        cell.sub_trace.seal();
        cell.workload = trace::TraceView(cell.sub_trace);

        auto cell_config = config_;
        cell_config.shard_cells = 1;
        cell_config.cluster = plan_.cells[k].cluster;
        // Position-keyed RNG substream, like the runner's per-trial
        // streams: independent of thread count and of other cells.
        cell_config.seed = sim::substreamSeed(config_.seed,
                                              static_cast<std::uint64_t>(k));
        cell.engine = std::make_unique<Engine>(
            cell.workload, cell_config, policy_factory(cell_config));
    }
}

RunMetrics
ShardedEngine::run(sim::ThreadPool *pool)
{
    begin();
    return finish(pool);
}

void
ShardedEngine::begin()
{
    if (ran_)
        throw std::logic_error("ShardedEngine: begin() is single-shot");
    ran_ = true;
    for (auto &cell : cells_)
        cell.engine->begin();
}

std::size_t
ShardedEngine::stepUntil(sim::SimTime until, sim::ThreadPool *pool)
{
    if (!ran_)
        throw std::logic_error("ShardedEngine: begin() first");
    std::vector<std::size_t> executed(cells_.size(), 0);
    auto body = [this, until, &executed](std::size_t k) {
        executed[k] = cells_[k].engine->stepUntil(until);
    };
    if (pool != nullptr)
        pool->parallelFor(cells_.size(), body);
    else
        for (std::size_t k = 0; k < cells_.size(); ++k)
            body(k);
    return std::accumulate(executed.begin(), executed.end(),
                           std::size_t{0});
}

RunMetrics
ShardedEngine::finish(sim::ThreadPool *pool)
{
    if (!ran_)
        throw std::logic_error("ShardedEngine: begin() first");

    // Drain every cell; each result lands at its cell index, so the
    // reduction below is independent of completion order.
    std::vector<RunMetrics> per_cell(cells_.size());
    auto body = [this, &per_cell](std::size_t k) {
        per_cell[k] = cells_[k].engine->finish();
    };
    if (pool != nullptr)
        pool->parallelFor(cells_.size(), body);
    else
        for (std::size_t k = 0; k < cells_.size(); ++k)
            body(k);

    if (cells_.size() == 1)
        return std::move(per_cell[0]);

    // Canonical cell-order fold on the calling thread.
    RunMetrics merged = std::move(per_cell[0]);
    std::vector<RequestOutcome> scattered;
    if (config_.record_per_request) {
        scattered.resize(trace_.requestCount());
        for (std::size_t i = 0; i < merged.outcomes.size(); ++i)
            scattered[cells_[0].orig_request[i]] = merged.outcomes[i];
    }
    for (std::size_t k = 1; k < cells_.size(); ++k) {
        merged.mergeConcurrent(per_cell[k]);
        if (config_.record_per_request)
            for (std::size_t i = 0; i < per_cell[k].outcomes.size(); ++i)
                scattered[cells_[k].orig_request[i]] =
                    per_cell[k].outcomes[i];
    }
    merged.outcomes = std::move(scattered);
    return merged;
}

bool
ShardedEngine::drained() const
{
    if (!ran_)
        return false;
    for (const auto &cell : cells_)
        if (!cell.engine->drained())
            return false;
    return true;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t sum = 0;
    for (const auto &cell : cells_)
        sum += cell.engine->eventsExecuted();
    return sum;
}

} // namespace cidre::core
