#include "core/sharded_engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "sim/rng.h"
#include "sim/serialize.h"
#include "sim/time.h"

namespace cidre::core {

namespace {

/** Per-worker capacities of the full cluster (worker 0 absorbs the
 *  division remainder, mirroring cluster::Cluster's own split). */
std::vector<std::int64_t>
fullClusterCapacities(const cluster::ClusterConfig &cfg)
{
    const auto per_worker =
        cfg.total_memory_mb / static_cast<std::int64_t>(cfg.workers);
    std::vector<std::int64_t> caps(cfg.workers, per_worker);
    caps[0] += cfg.total_memory_mb % static_cast<std::int64_t>(cfg.workers);
    return caps;
}

/** First simulated epoch length (~1 s); adaptation converges from here. */
constexpr sim::SimTime kInitialEpochUs = 1 << 20;

/** Ceiling on the adaptive epoch length (keeps `until` far from
 *  overflow even on degenerate all-idle traces). */
constexpr sim::SimTime kMaxEpochUs = sim::SimTime{1} << 40;

int
pinCpuFor(const ShardExecOptions &exec, std::size_t index)
{
    if (exec.pin_cpus.empty())
        return -1;
    return exec.pin_cpus[index % exec.pin_cpus.size()];
}

} // namespace

std::uint32_t
autoCellCount(trace::TraceView workload, const EngineConfig &config,
              unsigned shard_threads, const sim::CpuTopology &topology)
{
    if (!workload.valid())
        throw std::invalid_argument("autoCellCount: unbound workload view");

    // One cell per unit of real parallelism the run can apply: the
    // machine's physical cores when wider than the requested team.
    std::uint64_t want = std::max<std::uint64_t>(
        shard_threads, topology.physicalCores());

    // Clamps, in decreasing order of authority: the partition cannot
    // exceed the cluster's workers (each cell needs a worker slice) or
    // the trace's functions (a functionless cell simulates nothing),
    // and tiny traces do not amortize partition overhead.
    want = std::min<std::uint64_t>(want, config.cluster.workers);
    want = std::min<std::uint64_t>(want, workload.functionCount());
    want = std::min<std::uint64_t>(
        want, workload.requestCount() / kMinRequestsPerCell);
    return static_cast<std::uint32_t>(std::max<std::uint64_t>(want, 1));
}

ShardPlan
buildShardPlan(trace::TraceView workload, const EngineConfig &config)
{
    if (!workload.valid())
        throw std::invalid_argument("buildShardPlan: unbound workload view");
    config.validate();

    const auto cells = config.shard_cells;
    ShardPlan plan;
    plan.cells.resize(cells);
    plan.cell_of_function.assign(workload.functionCount(), 0);

    // Contiguous worker slices; the first (workers % cells) cells take
    // one extra worker.  Cell memory mirrors the monolithic split: the
    // per-worker capacities are passed to the cell *explicitly* (via
    // ClusterConfig::worker_memory_mb), so each worker keeps exactly
    // the capacity it would have in the full cluster — handing the cell
    // only a total would let cluster::Cluster re-split it and shift the
    // division remainder onto the cell's first worker.
    const auto caps = config.cluster.worker_memory_mb.empty()
        ? fullClusterCapacities(config.cluster)
        : config.cluster.worker_memory_mb;
    std::uint32_t next_worker = 0;
    for (std::uint32_t k = 0; k < cells; ++k) {
        auto &cell = plan.cells[k];
        cell.first_worker = next_worker;
        cell.worker_count = config.cluster.workers / cells +
            (k < config.cluster.workers % cells ? 1U : 0U);
        next_worker += cell.worker_count;

        cell.cluster.workers = cell.worker_count;
        const auto first_cap = caps.begin() + cell.first_worker;
        cell.cluster.worker_memory_mb.assign(
            first_cap, first_cap + cell.worker_count);
        cell.cluster.total_memory_mb = 0;
        for (std::uint32_t w = 0; w < cell.worker_count; ++w)
            cell.cluster.total_memory_mb += caps[cell.first_worker + w];
        if (!config.cluster.speed_factors.empty()) {
            const auto first = config.cluster.speed_factors.begin() +
                cell.first_worker;
            cell.cluster.speed_factors.assign(first,
                                              first + cell.worker_count);
        }
    }

    // Longest-processing-time assignment of functions to cells, keyed
    // by request count: heaviest function first into the least-loaded
    // cell.  Ties break to the lower function id (sort) and the lower
    // cell index (scan), keeping the plan a pure function of the trace.
    const auto counts = workload.requestCountByFunction();
    std::vector<trace::FunctionId> order(workload.functionCount());
    std::iota(order.begin(), order.end(), trace::FunctionId{0});
    std::sort(order.begin(), order.end(),
              [&counts](trace::FunctionId a, trace::FunctionId b) {
                  if (counts[a] != counts[b])
                      return counts[a] > counts[b];
                  return a < b;
              });
    for (const auto fn : order) {
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < cells; ++k)
            if (plan.cells[k].request_weight <
                plan.cells[best].request_weight)
                best = k;
        plan.cell_of_function[fn] = best;
        plan.cells[best].functions.push_back(fn);
        plan.cells[best].request_weight += counts[fn];
    }
    for (auto &cell : plan.cells)
        std::sort(cell.functions.begin(), cell.functions.end());

    return plan;
}

ShardedEngine::ShardedEngine(trace::TraceView workload,
                             EngineConfig config,
                             PolicyFactory policy_factory)
    : trace_(workload), config_(std::move(config)),
      policy_factory_(std::move(policy_factory))
{
    if (!policy_factory_)
        throw std::invalid_argument("ShardedEngine: null policy factory");
    plan_ = buildShardPlan(trace_, config_);

    // Sized exactly once: sub-traces (and the views the engines borrow
    // over them) live inside the cells, so the vector must never
    // reallocate after this point.  The cells themselves stay *empty*
    // until buildCell() — run() materializes each one on the thread
    // that simulates it, so the expensive state (sub-trace columns,
    // cluster, metrics) is first-touched NUMA-locally.
    cells_.resize(plan_.cells.size());
    if (plan_.cells.size() == 1)
        return; // pass-through: nothing to precompute

    // Cheap index maps, computed eagerly so buildCell(k) is a pure
    // gather.  A function's local id is its rank within its cell's
    // ascending function list — exactly what Trace::addFunction will
    // return when buildCell adds them in that order.
    local_id_.assign(trace_.functionCount(), 0);
    for (std::size_t k = 0; k < plan_.cells.size(); ++k) {
        const auto &functions = plan_.cells[k].functions;
        for (std::size_t j = 0; j < functions.size(); ++j)
            local_id_[functions[j]] =
                static_cast<trace::FunctionId>(j);
        cells_[k].orig_request.reserve(plan_.cells[k].request_weight);
    }
    for (std::uint64_t i = 0; i < trace_.requestCount(); ++i) {
        const auto k = plan_.cell_of_function[trace_.requestFunction(i)];
        cells_[k].orig_request.push_back(i);
    }
}

void
ShardedEngine::buildCell(std::size_t k)
{
    auto &cell = cells_[k];
    if (cell.engine)
        return;

    if (cells_.size() == 1) {
        // Pass-through: the original workload view, the original seed,
        // the original cluster — byte-identical to the plain Engine,
        // and zero-copy (the cell borrows the same backing pages).
        auto cell_config = config_;
        cell_config.shard_cells = 1;
        cell.engine = std::make_unique<Engine>(
            trace_, cell_config, policy_factory_(cell_config));
        cell.workload = trace_;
        return;
    }

    // Gather the cell's sub-trace: functions in ascending original-id
    // order (matching local_id_), requests in original sealed order, so
    // the sub-trace's stable sort preserves the identity mapping
    // between a cell request's index and its slot in orig_request.
    for (const auto fn : plan_.cells[k].functions)
        cell.sub_trace.addFunction(trace_.function(fn));
    for (const auto i : cell.orig_request)
        cell.sub_trace.addRequest(local_id_[trace_.requestFunction(i)],
                                  trace_.arrivalUs(i), trace_.execUs(i));
    cell.sub_trace.seal();
    cell.workload = trace::TraceView(cell.sub_trace);

    auto cell_config = config_;
    cell_config.shard_cells = 1;
    cell_config.cluster = plan_.cells[k].cluster;
    // Position-keyed RNG substream, like the runner's per-trial
    // streams: independent of thread count and of other cells.
    cell_config.seed = sim::substreamSeed(config_.seed,
                                          static_cast<std::uint64_t>(k));
    cell.engine = std::make_unique<Engine>(
        cell.workload, cell_config, policy_factory_(cell_config));
}

RunMetrics
ShardedEngine::run(sim::ThreadPool *pool, const ShardExecOptions &exec)
{
    if (ran_)
        throw std::logic_error("ShardedEngine: run() is single-shot");
    ran_ = true;

    // Stepped mode needs the pool's full team concurrently (bodies
    // meet at a barrier), so a pool already inside a loop — whose
    // nested dispatches run serially — must fall back to one-shot.
    // The fallback is bit-identical; only the epoch spine differs.
    if (exec.epoch_events > 0 && pool != nullptr && cells_.size() > 1 &&
        !pool->busy())
        return merge(runStepped(*pool, exec));

    // One-shot mode: each cell is built *and* run inside its loop body
    // (pin, first-touch, simulate — one thread, one cell, one node).
    std::vector<RunMetrics> per_cell(cells_.size());
    auto body = [this, &per_cell, &exec](std::size_t k) {
        sim::ScopedAffinity pin(pinCpuFor(exec, k));
        buildCell(k);
        per_cell[k] = cells_[k].engine->run();
    };
    if (pool != nullptr)
        pool->parallelFor(cells_.size(), body);
    else
        for (std::size_t k = 0; k < cells_.size(); ++k)
            body(k);
    return merge(std::move(per_cell));
}

std::vector<RunMetrics>
ShardedEngine::runStepped(sim::ThreadPool &pool,
                          const ShardExecOptions &exec)
{
    const unsigned team = pool.threadCount();
    const std::uint64_t target = exec.epoch_events;
    sim::EpochBarrier barrier(team, exec.barrier_spin);

    std::vector<RunMetrics> per_cell(cells_.size());

    // Per-worker epoch accounting, one padded slot per team index so
    // concurrent writers never share a cache line.
    struct alignas(64) WorkerEpoch
    {
        std::uint64_t events = 0;
        sim::SimTime next_event = sim::kTimeInfinity;
    };
    std::vector<WorkerEpoch> slots(team);

    // The shared epoch plan.  Written only by team index 0 between the
    // two barrier crossings of an epoch; read by everyone after the
    // second crossing.  The barrier's sense word orders the accesses
    // (leader writes happen-before its arrival, which happens-before
    // every wake), so no additional atomics are needed.
    struct alignas(64) EpochPlan
    {
        sim::SimTime until = 0;
        sim::SimTime epoch_len = kInitialEpochUs;
        std::uint64_t epochs_planned = 0;
        bool done = false;
    };
    EpochPlan plan;

    auto body = [&](std::size_t index) {
        const auto w = static_cast<unsigned>(index);
        sim::ScopedAffinity pin(pinCpuFor(exec, w));
        sim::EpochBarrier::Waiter waiter;

        // Build and arm the statically owned cells (k % team == w) on
        // this thread: ownership never migrates, so the pages stay with
        // the worker that keeps touching them.
        auto &slot = slots[w];
        for (std::size_t k = w; k < cells_.size(); k += team) {
            buildCell(k);
            cells_[k].engine->begin();
            slot.next_event = std::min(slot.next_event,
                                       cells_[k].engine->nextEventTime());
        }

        for (;;) {
            barrier.arriveAndWait(waiter);
            // Team index 0 — never "whoever arrived last", that is
            // scheduling-dependent — plans the next epoch from global
            // sums, so the plan sequence is a pure function of the
            // workload no matter how many workers execute it.
            if (w == 0) {
                std::uint64_t events = 0;
                auto next = sim::kTimeInfinity;
                for (const auto &s : slots) {
                    events += s.events;
                    next = std::min(next, s.next_event);
                }
                if (next == sim::kTimeInfinity) {
                    plan.done = true;
                } else {
                    // Adapt toward the events-per-epoch target (skip
                    // the arming pass — nothing has executed yet).
                    if (plan.epochs_planned > 0) {
                        if (events < target / 2)
                            plan.epoch_len =
                                std::min(plan.epoch_len * 2, kMaxEpochUs);
                        else if (events > target * 2)
                            plan.epoch_len = std::max(plan.epoch_len / 2,
                                                      sim::SimTime{1});
                    }
                    // Start the epoch at the next runnable event, not
                    // at the previous boundary: idle gaps are jumped,
                    // not swept.
                    plan.until =
                        std::max(plan.until, next) + plan.epoch_len;
                    ++plan.epochs_planned;
                }
            }
            barrier.arriveAndWait(waiter);
            if (plan.done)
                break;

            slot.events = 0;
            slot.next_event = sim::kTimeInfinity;
            for (std::size_t k = w; k < cells_.size(); k += team) {
                auto &engine = *cells_[k].engine;
                if (engine.drained())
                    continue;
                slot.events += engine.stepUntil(plan.until);
                slot.next_event = std::min(slot.next_event,
                                           engine.nextEventTime());
            }
        }

        for (std::size_t k = w; k < cells_.size(); k += team)
            per_cell[k] = cells_[k].engine->finish();
    };

    // One dispatch for the whole trial: the team is resident.  With
    // count == threadCount() and bodies that block on the barrier,
    // every pool thread ends up owning exactly one team index (no
    // thread can claim a second body before all bodies started).
    pool.parallelFor(team, sim::ThreadPool::Body(
        [&body](std::size_t index, unsigned) { body(index); }));
    return per_cell;
}

void
ShardedEngine::begin()
{
    if (ran_)
        throw std::logic_error("ShardedEngine: begin() is single-shot");
    ran_ = true;
    for (std::size_t k = 0; k < cells_.size(); ++k) {
        buildCell(k);
        cells_[k].engine->begin();
    }
}

void
ShardedEngine::beginLive()
{
    if (ran_)
        throw std::logic_error("ShardedEngine: beginLive() is single-shot");
    ran_ = true;
    for (std::size_t k = 0; k < cells_.size(); ++k) {
        buildCell(k);
        cells_[k].engine->beginLive();
    }
}

std::uint64_t
ShardedEngine::admit(sim::SimTime when, trace::FunctionId function,
                     sim::SimTime exec_us)
{
    if (function >= plan_.cell_of_function.size())
        throw std::out_of_range("ShardedEngine::admit: unknown function");
    const auto k = plan_.cell_of_function[function];
    const trace::FunctionId local =
        cells_.size() == 1 ? function : local_id_[function];
    return cells_[k].engine->admit(when, local, exec_us);
}

void
ShardedEngine::closeStream()
{
    for (auto &cell : cells_)
        cell.engine->closeStream();
}

void
ShardedEngine::saveState(sim::StateWriter &writer) const
{
    if (!ran_)
        throw std::logic_error("ShardedEngine::saveState: begin() first");
    writer.put<std::uint64_t>(cells_.size());
    for (const auto &cell : cells_)
        cell.engine->saveState(writer);
}

void
ShardedEngine::loadState(sim::StateReader &reader)
{
    if (ran_)
        throw std::logic_error(
            "ShardedEngine::loadState: restore requires a fresh engine");
    // The partition and every cell's sub-trace are deterministic
    // functions of (trace, config); only the engines carry run state.
    for (std::size_t k = 0; k < cells_.size(); ++k)
        buildCell(k);
    const std::uint64_t cell_count = reader.get<std::uint64_t>();
    if (cell_count != cells_.size())
        throw std::runtime_error(
            "ShardedEngine: checkpoint does not match the partition "
            "(cell count mismatch)");
    for (auto &cell : cells_)
        cell.engine->loadState(reader);
    ran_ = true;
}

void
ShardedEngine::forEachCell(
    const std::function<void(Engine &, std::uint32_t)> &fn)
{
    if (!ran_)
        throw std::logic_error(
            "ShardedEngine::forEachCell: begin() or loadState() first");
    for (std::size_t k = 0; k < cells_.size(); ++k)
        fn(*cells_[k].engine, static_cast<std::uint32_t>(k));
}

std::size_t
ShardedEngine::stepUntil(sim::SimTime until, sim::ThreadPool *pool)
{
    if (!ran_)
        throw std::logic_error("ShardedEngine: begin() first");
    if (pool == nullptr) {
        // Serial path, allocation-free: the live orchestrator steps
        // between every admission, so this runs per request.
        std::size_t total = 0;
        for (auto &cell : cells_)
            total += cell.engine->stepUntil(until);
        return total;
    }
    std::vector<PaddedCount> executed(cells_.size());
    auto body = [this, until, &executed](std::size_t k) {
        executed[k].value = cells_[k].engine->stepUntil(until);
    };
    pool->parallelFor(cells_.size(), body);
    std::size_t total = 0;
    for (const auto &count : executed)
        total += count.value;
    return total;
}

RunMetrics
ShardedEngine::finish(sim::ThreadPool *pool)
{
    if (!ran_)
        throw std::logic_error("ShardedEngine: begin() first");

    // Drain every cell; each result lands at its cell index, so the
    // reduction below is independent of completion order.
    std::vector<RunMetrics> per_cell(cells_.size());
    auto body = [this, &per_cell](std::size_t k) {
        per_cell[k] = cells_[k].engine->finish();
    };
    if (pool != nullptr)
        pool->parallelFor(cells_.size(), body);
    else
        for (std::size_t k = 0; k < cells_.size(); ++k)
            body(k);
    return merge(std::move(per_cell));
}

RunMetrics
ShardedEngine::merge(std::vector<RunMetrics> per_cell)
{
    if (cells_.size() == 1)
        return std::move(per_cell[0]);

    // Canonical cell-order fold on the calling thread.
    RunMetrics merged = std::move(per_cell[0]);
    std::vector<RequestOutcome> scattered;
    if (config_.record_per_request) {
        scattered.resize(trace_.requestCount());
        for (std::size_t i = 0; i < merged.outcomes.size(); ++i)
            scattered[cells_[0].orig_request[i]] = merged.outcomes[i];
    }
    for (std::size_t k = 1; k < cells_.size(); ++k) {
        merged.mergeConcurrent(per_cell[k]);
        if (config_.record_per_request)
            for (std::size_t i = 0; i < per_cell[k].outcomes.size(); ++i)
                scattered[cells_[k].orig_request[i]] =
                    per_cell[k].outcomes[i];
    }
    merged.outcomes = std::move(scattered);
    return merged;
}

bool
ShardedEngine::drained() const
{
    if (!ran_)
        return false;
    for (const auto &cell : cells_)
        if (!cell.engine || !cell.engine->drained())
            return false;
    return true;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t sum = 0;
    for (const auto &cell : cells_)
        if (cell.engine)
            sum += cell.engine->eventsExecuted();
    return sum;
}

} // namespace cidre::core
