/**
 * @file
 * Metrics serialization: dump a RunMetrics as JSON for downstream
 * tooling (plotting, regression tracking), plus per-function breakdowns
 * computed from the per-request outcome log.
 */

#ifndef CIDRE_CORE_METRICS_IO_H
#define CIDRE_CORE_METRICS_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "trace/trace_view.h"

namespace cidre::core {

/**
 * Serialize the run metrics as a single JSON object (hand-rolled, no
 * dependencies): request counts and ratios, wait/E2E percentiles,
 * resource counters, memory statistics.
 */
void writeMetricsJson(const RunMetrics &metrics, std::ostream &out);

/** Convenience: JSON to a file; throws std::runtime_error on I/O. */
void writeMetricsJsonFile(const RunMetrics &metrics,
                          const std::string &path);

/** Per-function aggregate computed from the outcome log. */
struct FunctionBreakdown
{
    trace::FunctionId function = trace::kInvalidFunction;
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t cold = 0;
    std::uint64_t delayed = 0;
    double total_wait_ms = 0.0;
    double avg_wait_ms = 0.0;
};

/**
 * Aggregate the outcome log by function, sorted by total wait time
 * (descending) — "which functions pay the most overhead".
 * Requires metrics recorded with record_per_request; returns at most
 * @p top entries.
 */
std::vector<FunctionBreakdown> perFunctionBreakdown(
    trace::TraceView workload, const RunMetrics &metrics,
    std::size_t top = 10);

} // namespace cidre::core

#endif // CIDRE_CORE_METRICS_IO_H
