#include "core/config.h"

#include <stdexcept>

namespace cidre::core {

void
EngineConfig::validate() const
{
    if (cluster.workers == 0)
        throw std::invalid_argument("EngineConfig: need >= 1 worker");
    if (cluster.total_memory_mb <= 0)
        throw std::invalid_argument("EngineConfig: memory must be positive");
    if (!cluster.worker_memory_mb.empty() &&
        cluster.worker_memory_mb.size() != cluster.workers)
        throw std::invalid_argument(
            "EngineConfig: worker_memory_mb must have one entry per worker");
    if (container_threads == 0)
        throw std::invalid_argument("EngineConfig: threads must be >= 1");
    if (maintenance_interval <= 0)
        throw std::invalid_argument("EngineConfig: bad maintenance interval");
    if (stats_window <= 0)
        throw std::invalid_argument("EngineConfig: bad stats window");
    if (window_max_samples == 0)
        throw std::invalid_argument("EngineConfig: bad window cap");
    if (te_percentile > 1.0)
        throw std::invalid_argument("EngineConfig: te_percentile > 1");
    if (compression_ratio <= 1.0)
        throw std::invalid_argument("EngineConfig: compression ratio <= 1");
    if (restore_cost_fraction < 0.0 || restore_cost_fraction > 1.0)
        throw std::invalid_argument("EngineConfig: bad restore fraction");
    if (shard_cells == 0)
        throw std::invalid_argument("EngineConfig: shard_cells must be >= 1");
    if (shard_cells > cluster.workers)
        throw std::invalid_argument(
            "EngineConfig: shard_cells exceeds the worker count (every "
            "cell needs at least one worker)");
}

} // namespace cidre::core
