#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::core {

namespace {

/**
 * Borrow a member scratch vector for the duration of a scope: the
 * buffer is moved out (so a re-entrant callback sees an empty member
 * and safely allocates its own) and moved back, grown, on scope exit.
 * Steady-state, non-re-entrant use allocates nothing.
 */
template <typename T>
class ScratchLease
{
  public:
    explicit ScratchLease(std::vector<T> &owner)
        : owner_(owner), vec_(std::move(owner))
    {
        vec_.clear();
    }
    ~ScratchLease() { owner_ = std::move(vec_); }
    ScratchLease(const ScratchLease &) = delete;
    ScratchLease &operator=(const ScratchLease &) = delete;

    std::vector<T> &operator*() { return vec_; }

  private:
    std::vector<T> &owner_;
    std::vector<T> vec_;
};

/** ScratchLease for the engine's reusable ReclaimPlan buffer. */
class PlanLease
{
  public:
    explicit PlanLease(ReclaimPlan &owner)
        : owner_(owner), plan_(std::move(owner))
    {
        plan_.clear();
    }
    ~PlanLease() { owner_ = std::move(plan_); }
    PlanLease(const PlanLease &) = delete;
    PlanLease &operator=(const PlanLease &) = delete;

    ReclaimPlan &operator*() { return plan_; }

  private:
    ReclaimPlan &owner_;
    ReclaimPlan plan_;
};

// Checkpoint event-tag kinds: every pending event the engine schedules
// carries one so a restored queue can rebuild the callback closures.
constexpr std::uint32_t kEvArrival = 1;           //!< b = request index
constexpr std::uint32_t kEvMaintenance = 2;       //!< no payload
constexpr std::uint32_t kEvExecComplete = 3;      //!< a = cid, b = request
constexpr std::uint32_t kEvProvisionComplete = 4; //!< a = cid

} // namespace

void
Engine::buildPlacementOrder(std::vector<cluster::WorkerId> &order,
                            std::uint64_t round_robin_cursor) const
{
    const cluster::Cluster &cl = cluster_;
    order.resize(cl.workerCount());
    // Single-worker clusters (the common unit-test configuration) have
    // exactly one visiting order; skip the comparator work entirely.
    if (order.size() == 1) {
        order[0] = 0;
        return;
    }
    for (cluster::WorkerId i = 0; i < order.size(); ++i)
        order[i] = i;
    switch (config_.placement) {
      case PlacementPolicy::MostFree:
        std::sort(order.begin(), order.end(),
                  [&](cluster::WorkerId a, cluster::WorkerId b) {
                      const auto fa = cl.worker(a).freeMb();
                      const auto fb = cl.worker(b).freeMb();
                      return fa != fb ? fa > fb : a < b;
                  });
        break;
      case PlacementPolicy::RoundRobin:
        std::rotate(order.begin(),
                    order.begin() +
                        static_cast<std::ptrdiff_t>(round_robin_cursor %
                                                    order.size()),
                    order.end());
        break;
      case PlacementPolicy::FastestFirst:
        std::sort(order.begin(), order.end(),
                  [&](cluster::WorkerId a, cluster::WorkerId b) {
                      const double sa = cl.worker(a).speedFactor();
                      const double sb = cl.worker(b).speedFactor();
                      if (sa != sb)
                          return sa < sb;
                      const auto fa = cl.worker(a).freeMb();
                      const auto fb = cl.worker(b).freeMb();
                      return fa != fb ? fa > fb : a < b;
                  });
        break;
    }
}

Engine::Engine(trace::TraceView workload, EngineConfig config,
               OrchestrationPolicy policy)
    : trace_(workload),
      config_(std::move(config)),
      policy_(std::move(policy)),
      cluster_(config_.cluster),
      rng_(config_.seed)
{
    config_.validate();
    if (config_.shard_cells != 1) {
        throw std::invalid_argument(
            "Engine: shard_cells > 1 requires ShardedEngine (the plain "
            "engine would simulate the monolithic, unpartitioned cluster)");
    }
    if (!trace_.valid())
        throw std::invalid_argument("Engine: unbound workload view");
    if (!policy_.scaling || !policy_.keep_alive)
        throw std::invalid_argument("Engine: policy bundle incomplete");

    // Every function must fit on at least one worker or the workload can
    // never be scheduled at all.
    std::int64_t max_worker_mb = 0;
    for (const auto &worker : cluster_.workers())
        max_worker_mb = std::max(max_worker_mb, worker.capacityMb());
    for (const auto &fn : trace_.functions()) {
        if (fn.memory_mb > max_worker_mb) {
            throw std::invalid_argument(
                "Engine: function " + fn.name + " (" +
                std::to_string(fn.memory_mb) +
                " MB) exceeds every worker's capacity");
        }
    }

    states_.reserve(trace_.functionCount());
    for (trace::FunctionId id = 0; id < trace_.functionCount(); ++id) {
        states_.emplace_back(id, config_.stats_window,
                             config_.window_max_samples);
    }
    worker_idle_.resize(cluster_.workerCount());
    worker_idle_epoch_.assign(cluster_.workerCount(), 0);
    track_busy_ends_ = policy_.scaling->wantsBusyCompletionView();
    if (config_.record_per_request)
        metrics_.outcomes.resize(trace_.requestCount());
}

RunMetrics
Engine::run()
{
    begin();
    return finish();
}

void
Engine::begin()
{
    if (ran_)
        throw std::logic_error("Engine::run: single-shot engine reused");
    ran_ = true;

    scheduleNextArrival();
    scheduleTickIfNeeded();
}

void
Engine::beginLive()
{
    if (ran_)
        throw std::logic_error("Engine::run: single-shot engine reused");
    if (config_.record_per_request)
        throw std::logic_error(
            "Engine: live mode does not support per-request recording "
            "(outcome storage is sized by the trace, not the stream)");
    live_ = true;
    ran_ = true;

    // Mirrors begin() exactly: the first admission's queue position is
    // claimed here, where trace mode schedules arrival 0, and the
    // maintenance tick chain starts right after it.
    scheduleNextArrival();
    scheduleTickIfNeeded();
}

std::uint64_t
Engine::admit(sim::SimTime when, trace::FunctionId function,
              sim::SimTime exec_us)
{
    if (!live_)
        throw std::logic_error("Engine::admit: beginLive() first");
    if (stream_closed_)
        throw std::logic_error("Engine::admit: stream already closed");
    if (function >= states_.size())
        throw std::out_of_range("Engine::admit: unknown function id");
    if (exec_us < 0)
        throw std::invalid_argument("Engine::admit: negative exec time");
    if (when < queue_.now())
        throw std::logic_error(
            "Engine::admit: admission behind the virtual clock (the "
            "driver must not step past an arrival before admitting it)");

    const std::uint64_t index = live_requests_.size();
    live_requests_.push_back(LiveRequest{function, when, exec_us});
    const auto id = queue_.scheduleReserved(
        when, live_next_seq_, sim::EventTag{kEvArrival, 0, index},
        [this, index](sim::SimTime) { handleArrival(index); });
    // Run every event ordered before the admission, then the admission
    // itself (handleArrival re-reserves live_next_seq_ for the next
    // one).  Events *after* the arrival — even at the same timestamp —
    // stay pending, so the interleaving matches trace mode no matter
    // where the stream pauses.
    queue_.runTo(id);
    return index;
}

void
Engine::closeStream()
{
    if (!live_)
        throw std::logic_error("Engine::closeStream: beginLive() first");
    stream_closed_ = true;
}

std::size_t
Engine::stepUntil(sim::SimTime until)
{
    if (!ran_)
        throw std::logic_error("Engine::stepUntil: begin() not called");
    return queue_.runUntil(until);
}

RunMetrics
Engine::finish()
{
    if (!ran_)
        throw std::logic_error("Engine::finish: begin() not called");
    if (live_ && !stream_closed_)
        throw std::logic_error("Engine::finish: closeStream() first");
    queue_.runAll();

    const std::uint64_t expected =
        live_ ? live_requests_.size() : trace_.requestCount();
    if (completed_requests_ != expected) {
        throw std::logic_error(
            "Engine: only " + std::to_string(completed_requests_) + " of " +
            std::to_string(expected) +
            " requests completed — orchestration deadlock");
    }
    // Finalize at the last *executed* event, not at now(): a stepped
    // driver's final epoch deadline may overshoot the last event, and
    // the time-integral metrics (makespan, average memory) must not
    // depend on where the epoch boundaries fell.
    metrics_.finalize(queue_.lastEventTime());
    return std::move(metrics_);
}

void
Engine::scheduleNextArrival()
{
    if (live_) {
        // The next admission's payload is unknown, but its place in the
        // FIFO order among equal-time events is decided *here* — the
        // exact point where trace mode allocates the next arrival's
        // sequence number.  admit() spends the reservation.
        live_next_seq_ = queue_.reserveSeq();
        return;
    }
    if (arrival_cursor_ >= trace_.requestCount())
        return;
    const std::uint64_t index = arrival_cursor_++;
    queue_.schedule(trace_.arrivalUs(index),
                    sim::EventTag{kEvArrival, 0, index},
                    [this, index](sim::SimTime) { handleArrival(index); });
}

void
Engine::scheduleTickIfNeeded()
{
    if (tick_scheduled_ || !hasPendingWork())
        return;
    tick_scheduled_ = true;
    queue_.scheduleAfter(config_.maintenance_interval,
                         sim::EventTag{kEvMaintenance, 0, 0},
                         [this](sim::SimTime) { handleMaintenance(); });
}

bool
Engine::hasPendingWork() const
{
    // Ticks must keep running until the very last request completed —
    // TTL expiry and pre-warm agents stay active through idle gaps in
    // the arrival stream.  A live run cannot know its request count
    // until the stream closes, so the tick chain stays armed while it
    // remains open.
    if (live_)
        return !stream_closed_ ||
            completed_requests_ < live_requests_.size();
    return completed_requests_ < trace_.requestCount();
}

trace::Request
Engine::requestAt(std::uint64_t index) const
{
    if (!live_)
        return trace_.request(index);
    const LiveRequest &r = live_requests_[index];
    return trace::Request{index, r.function, r.arrival_us, r.exec_us};
}

void
Engine::handleArrival(std::uint64_t request_index)
{
    const trace::Request req = requestAt(request_index);
    FunctionState &fs = states_[req.function];
    fs.noteArrival(now());
    ++outstanding_requests_;
    if (policy_.agent)
        policy_.agent->onRequestObserved(*this, req);

    if (!fs.available().empty()) {
        // Case I of Algorithm 2: a free warm slot — a true warm start.
        cluster::Container &c =
            cluster_.container(fs.available().back());
        dispatch(c, request_index, StartType::Warm);
    } else if (cluster::Container *victim = findRestorableContainer(fs)) {
        // A compressed container can be inflated cheaper than a cold
        // start (CodeCrunch path).
        startRestore(*victim, request_index);
    } else {
        // Case II: consult the scaling policy.
        if (config_.record_per_request) {
            // Record the counterfactual queuing delay for the what-if
            // analyses: the earliest busy-container completion.
            sim::SimTime earliest = sim::kTimeInfinity;
            for (const cluster::ContainerId cid : fs.cached()) {
                const cluster::Container &c = cluster_.container(cid);
                if (c.busy())
                    earliest = std::min(earliest, c.busy_until);
            }
            metrics_.outcomes[request_index].counterfactual_queue_us =
                earliest == sim::kTimeInfinity ? -1 : earliest - now();
        }
        ScalingChoice choice =
            policy_.scaling->onNoFreeContainer(*this, req);

        // Starvation guard: waiting is only sound if some container of
        // this function will eventually free up or materialize.
        const bool has_future_capacity =
            fs.busyCount() > 0 || fs.provisioningCount() > 0;
        if ((choice.decision == ScalingDecision::Wait ||
             choice.decision == ScalingDecision::QueueBound) &&
            !has_future_capacity) {
            choice.decision = ScalingDecision::Speculative;
        }
        if (choice.decision == ScalingDecision::QueueBound) {
            // Validate the queue target; fall back to a plain cold start
            // on a policy mistake rather than corrupting state.
            if (choice.target == cluster::kInvalidContainer ||
                !cluster_.container(choice.target).busy() ||
                cluster_.container(choice.target).function != req.function) {
                choice.decision = ScalingDecision::ColdStartBound;
            }
        }

        switch (choice.decision) {
          case ScalingDecision::ColdStartBound:
            provision(req.function, cluster::ProvisionReason::Demand,
                      static_cast<std::int64_t>(request_index));
            break;
          case ScalingDecision::QueueBound:
            cluster_.container(choice.target)
                .bound_queue.push_back(request_index);
            break;
          case ScalingDecision::Wait:
            fs.channel().push_back({request_index, now()});
            break;
          case ScalingDecision::Speculative:
            fs.channel().push_back({request_index, now()});
            if (config_.speculation_mode == SpeculationMode::PerRequest ||
                fs.channel().size() == 1) {
                fs.last_head_evaluated = request_index;
                provision(req.function,
                          cluster::ProvisionReason::Speculative, -1);
            }
            break;
        }
    }

    scheduleNextArrival();
    scheduleTickIfNeeded();
}

void
Engine::dispatch(cluster::Container &c, std::uint64_t request_index,
                 StartType type)
{
    const trace::Request req = requestAt(request_index);
    assert(c.live());
    assert(c.function == req.function);
    assert(c.active < c.threads);
    FunctionState &fs = states_[c.function];

    const bool was_busy = c.active > 0;
    if (!was_busy) {
        if (c.idle_slot >= 0)
            removeFromWorkerIdle(c);
        fs.noteBusy(true);
    }
    ++c.active;
    if (!c.hasFreeSlot() && fs.isAvailable(c))
        fs.removeAvailable(c, cluster_.slab());

    const sim::SimTime wait = now() - req.arrival_us;
    assert(wait >= 0);
    c.last_used_at = now();
    ++c.use_count;
    const sim::SimTime prev_until = c.busy_until;
    c.busy_until = std::max(c.busy_until, now() + req.exec_us);
    if (track_busy_ends_) {
        if (!was_busy)
            fs.busyEndInsert(c.busy_until);
        else if (c.busy_until != prev_until) {
            fs.busyEndErase(prev_until);
            fs.busyEndInsert(c.busy_until);
        }
    }

    // T_i bookkeeping: first reuse of the tracked speculative container.
    if (fs.tracked_spec_container == c.id)
        reportSpeculativeOutcome(fs, c, /*reused=*/true);

    metrics_.recordStart(type, wait, req.exec_us);
    if (config_.slo_us > 0 && wait > config_.slo_us)
        ++metrics_.slo_violations;
    if (config_.record_per_request) {
        RequestOutcome &outcome = metrics_.outcomes[request_index];
        outcome.type = type;
        outcome.wait_us = wait;
        outcome.exec_us = req.exec_us;
    }
    if (config_.record_timeline) {
        if (type == StartType::Cold)
            metrics_.timeline.cold_starts.record(now(), 1.0);
        else if (type == StartType::DelayedWarm)
            metrics_.timeline.delayed_warms.record(now(), 1.0);
    }
    policy_.keep_alive->onUse(*this, c, type);
    policy_.scaling->onDispatch(*this, req, type, wait);

    const cluster::ContainerId cid = c.id;
    queue_.scheduleAfter(req.exec_us,
                         sim::EventTag{kEvExecComplete, cid, request_index},
                         [this, cid, request_index](sim::SimTime) {
                             handleExecutionComplete(cid, request_index);
                         });
}

void
Engine::drainQueuesInto(cluster::Container &c, StartType type)
{
    FunctionState &fs = states_[c.function];
    while (c.hasFreeSlot()) {
        std::uint64_t next;
        if (!c.bound_queue.empty()) {
            next = c.bound_queue.front();
            c.bound_queue.pop_front();
        } else if (!fs.channel().empty()) {
            next = fs.channel().front().request_index;
            fs.channel().pop_front();
        } else {
            break;
        }
        dispatch(c, next, type);
    }
}

void
Engine::handleProvisionComplete(cluster::ContainerId id)
{
    cluster::Container &c = cluster_.container(id);
    assert(c.provisioning());
    FunctionState &fs = states_[c.function];

    const bool was_restore = c.restoring;
    c.restoring = false;
    c.state = cluster::ContainerState::Live;
    fs.noteProvisioning(false);
    fs.addCached(c);

    if (!was_restore) {
        // A genuine cold-start latency observation feeds T_p.
        fs.coldWindow().add(now(), static_cast<double>(
            c.provision_ends_at - c.created_at));
    }

    const StartType type =
        was_restore ? StartType::Restored : StartType::Cold;
    drainQueuesInto(c, type);

    if (c.active == 0) {
        // Nobody needed it (the speculative wait won, or this was a
        // pre-warm): the container idles in the cache.
        c.idle_since = now();
        fs.addAvailable(c);
        addToWorkerIdle(c);
        policy_.keep_alive->onIdle(*this, c);
        if (c.reason == cluster::ProvisionReason::Speculative) {
            // Begin measuring T_i for this function (§3.2).
            fs.tracked_spec_container = c.id;
            fs.tracked_spec_ready_at = now();
        }
        retryDeferred();
    } else if (c.hasFreeSlot()) {
        fs.addAvailable(c);
    }

    if (c.active > 0 && !was_restore &&
        c.reason == cluster::ProvisionReason::Speculative) {
        // The speculative container was needed immediately: T_i = 0.
        policy_.scaling->onSpeculativeOutcome(*this, c.function, 0, true);
    }
    evaluateChannelHead(fs);
}

void
Engine::handleExecutionComplete(cluster::ContainerId id,
                                std::uint64_t request_index)
{
    cluster::Container &c = cluster_.container(id);
    assert(c.busy());
    FunctionState &fs = states_[c.function];
    const trace::Request req = requestAt(request_index);

    --c.active;
    if (c.active == 0) {
        fs.noteBusy(false);
        if (track_busy_ends_)
            fs.busyEndErase(c.busy_until);
    }
    ++completed_requests_;
    --outstanding_requests_;

    // Completed executions feed the T_e window (§3.2).
    fs.execWindow().add(now(), static_cast<double>(req.exec_us));

    // Work conservation: the freed slot immediately serves queued work
    // as a delayed warm start.
    drainQueuesInto(c, StartType::DelayedWarm);

    if (c.hasFreeSlot() && !fs.isAvailable(c))
        fs.addAvailable(c);
    if (c.active == 0 && c.live()) {
        c.idle_since = now();
        addToWorkerIdle(c);
        policy_.keep_alive->onIdle(*this, c);
        retryDeferred();
    }
    evaluateChannelHead(fs);
    scheduleTickIfNeeded();
}

void
Engine::evaluateChannelHead(FunctionState &fs)
{
    if (config_.speculation_mode != SpeculationMode::PerHead)
        return;
    if (fs.channel().empty())
        return;
    const std::uint64_t head = fs.channel().front().request_index;
    if (fs.last_head_evaluated == head)
        return;
    fs.last_head_evaluated = head;

    const trace::Request req = requestAt(head);
    const ScalingChoice choice =
        policy_.scaling->onNoFreeContainer(*this, req);
    const bool wants_provision =
        choice.decision == ScalingDecision::Speculative ||
        choice.decision == ScalingDecision::ColdStartBound;
    // Starvation guard: a waiting head with nothing that could ever
    // serve it must get a container regardless of the decision.
    const bool must_provision =
        fs.busyCount() == 0 && fs.provisioningCount() == 0;
    if (wants_provision || must_provision)
        provision(req.function, cluster::ProvisionReason::Speculative, -1);
}

void
Engine::handleMaintenance()
{
    tick_scheduled_ = false;

    ScratchLease<cluster::ContainerId> lease(expired_scratch_);
    std::vector<cluster::ContainerId> &expired = *lease;
    policy_.keep_alive->collectExpired(*this, now(), expired);
    for (const cluster::ContainerId id : expired) {
        const cluster::Container &c = cluster_.container(id);
        if ((c.live() && c.active == 0) || c.compressed())
            reapContainer(id, /*expired=*/true);
    }

    if (policy_.agent)
        policy_.agent->onTick(*this, now());

    retryDeferred();
    scheduleTickIfNeeded();
}

void
Engine::provision(trace::FunctionId function,
                  cluster::ProvisionReason reason,
                  std::int64_t bound_request)
{
    const DeferredProvision req{function, reason, bound_request};
    if (!tryStartProvision(req)) {
        deferred_.push_back(req);
        ++metrics_.deferred_provisions;
    }
}

bool
Engine::tryStartProvision(const DeferredProvision &req)
{
    const trace::FunctionProfile &profile = trace_.function(req.function);
    const std::int64_t need = profile.memory_mb;

    ScratchLease<cluster::WorkerId> lease(placement_scratch_);
    std::vector<cluster::WorkerId> &order = *lease;
    buildPlacementOrder(order, round_robin_cursor_++);
    for (const cluster::WorkerId wid : order) {
        cluster::Worker &host = cluster_.worker(wid);
        double watermark = 0.0;
        if (!ensureFreeOn(wid, need, watermark, cluster::kInvalidContainer,
                          req.function)) {
            continue;
        }

        // Start the cold start on this worker.
        const cluster::ContainerId cid = cluster_.createContainer(
            req.function, wid, need, config_.container_threads, req.reason,
            now());
        cluster::Container &c = cluster_.container(cid);
        ++metrics_.containers_created;
        metrics_.provisioned_mb += static_cast<std::uint64_t>(need);
        if (config_.record_timeline)
            metrics_.timeline.provisions.record(now(), 1.0);
        states_[req.function].noteProvisioning(true);

        sim::SimTime cost = static_cast<sim::SimTime>(
            static_cast<double>(profile.cold_start_us) *
            host.speedFactor());
        if (policy_.agent)
            cost = policy_.agent->provisionCost(*this, profile, wid, cost);
        cost = std::max<sim::SimTime>(cost, 1);
        c.provision_ends_at = now() + cost;
        if (req.bound_request >= 0) {
            c.bound_queue.push_back(
                static_cast<std::uint64_t>(req.bound_request));
        }
        policy_.keep_alive->onAdmit(*this, c, watermark);
        noteMemory();

        queue_.schedule(c.provision_ends_at,
                        sim::EventTag{kEvProvisionComplete, cid, 0},
                        [this, cid](sim::SimTime) {
                            handleProvisionComplete(cid);
                        });
        return true;
    }
    return false;
}

bool
Engine::ensureFreeOn(cluster::WorkerId worker, std::int64_t need_mb,
                     double &watermark, cluster::ContainerId exclude,
                     trace::FunctionId beneficiary)
{
    cluster::Worker &host = cluster_.worker(worker);

    // Reclaim in (bounded) rounds: applying a plan can itself consume
    // memory — e.g. RainbowCake demotes evicted containers into layer
    // caches — so a single round may leave the demand unmet.
    for (int round = 0; !host.fits(need_mb); ++round) {
        if (round >= 4)
            return false;
        const ReclaimRequest demand{worker, need_mb - host.freeMb(),
                                    beneficiary, exclude};
        PlanLease plan_lease(plan_scratch_);
        ReclaimPlan &plan = *plan_lease;
        policy_.keep_alive->planReclaim(*this, demand, plan);

        // Validate and size the plan before touching anything; entries
        // matching the excluded container are dropped, not applied.
        std::int64_t reclaimable = 0;
        bool valid = true;
        ScratchLease<cluster::ContainerId> compress_lease(compress_scratch_);
        ScratchLease<cluster::ContainerId> evict_lease(evict_scratch_);
        std::vector<cluster::ContainerId> &to_compress = *compress_lease;
        std::vector<cluster::ContainerId> &to_evict = *evict_lease;
        for (const cluster::ContainerId cid : plan.compress) {
            if (cid == exclude)
                continue;
            const cluster::Container &victim = cluster_.container(cid);
            if (!victim.idle() || victim.worker != worker) {
                valid = false;
                break;
            }
            reclaimable += victim.full_memory_mb -
                std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(
                           static_cast<double>(victim.full_memory_mb) /
                           config_.compression_ratio));
            to_compress.push_back(cid);
        }
        for (const cluster::ContainerId cid : plan.evict) {
            if (cid == exclude)
                continue;
            const cluster::Container &victim = cluster_.container(cid);
            if (!((victim.idle() || victim.compressed()) &&
                  victim.active == 0) ||
                victim.worker != worker) {
                valid = false;
                break;
            }
            reclaimable += victim.memory_mb;
            to_evict.push_back(cid);
        }
        if (!valid)
            throw std::logic_error(
                "Engine: keep-alive policy returned an invalid plan");
        // Recompute the demand: policies may free auxiliary memory
        // (e.g. RainbowCake layer caches) inside planReclaim.
        const std::int64_t still_needed = need_mb - host.freeMb();
        if (still_needed <= 0)
            break;
        if (reclaimable < still_needed)
            return false; // this worker cannot host it right now

        for (const cluster::ContainerId cid : to_compress) {
            cluster::Container &victim = cluster_.container(cid);
            // A compressed container stays cached and evictable but can
            // no longer serve requests directly.
            FunctionState &vfs = states_[victim.function];
            if (vfs.isAvailable(victim))
                vfs.removeAvailable(victim, cluster_.slab());
            cluster_.compressContainer(cid, config_.compression_ratio);
            ++metrics_.compressions;
            ++compressed_live_;
        }
        for (const cluster::ContainerId cid : to_evict) {
            watermark =
                std::max(watermark, cluster_.container(cid).priority);
            evictContainer(cid, /*expired=*/false);
        }
    }
    return host.fits(need_mb);
}

void
Engine::retryDeferred()
{
    if (in_retry_)
        return;
    in_retry_ = true;
    while (!deferred_.empty()) {
        const DeferredProvision &head = deferred_.front();
        // A deferred *speculative* provision whose channel has already
        // drained would create a container nobody asked for; cancel it
        // when the admission-control knob is on.
        if (config_.cancel_stale_speculation &&
            head.reason == cluster::ProvisionReason::Speculative &&
            states_[head.function].channel().empty()) {
            deferred_.pop_front();
            ++metrics_.cancelled_provisions;
            continue;
        }
        if (!tryStartProvision(head))
            break; // FIFO: the head blocks until memory frees
        deferred_.pop_front();
    }
    in_retry_ = false;
}

cluster::Container *
Engine::findRestorableContainer(FunctionState &fs)
{
    // Only CodeCrunch-style policies ever compress; skip the per-miss
    // scan entirely for everyone else.
    if (compressed_live_ == 0)
        return nullptr;
    for (const cluster::ContainerId cid : fs.cached()) {
        cluster::Container &c = cluster_.container(cid);
        if (!c.compressed())
            continue;
        const std::int64_t grow = c.full_memory_mb - c.memory_mb;
        if (cluster_.worker(c.worker).fits(grow))
            return &c;
        // Try to reclaim colder state to make room for the inflation —
        // restoring at a fraction of the cold-start cost is worth an
        // eviction elsewhere.
        double watermark = 0.0;
        if (ensureFreeOn(c.worker, grow, watermark, c.id, c.function))
            return &c;
    }
    return nullptr;
}

void
Engine::startRestore(cluster::Container &c, std::uint64_t request_index)
{
    FunctionState &fs = states_[c.function];
    cluster_.decompressContainer(c.id); // -> Live, full footprint
    --compressed_live_;
    removeFromWorkerIdle(c);
    fs.removeCached(c, cluster_.slab());

    c.state = cluster::ContainerState::Provisioning;
    c.restoring = true;
    fs.noteProvisioning(true);

    const trace::FunctionProfile &profile = trace_.function(c.function);
    const sim::SimTime cost = std::max<sim::SimTime>(
        static_cast<sim::SimTime>(
            static_cast<double>(profile.cold_start_us) *
            cluster_.worker(c.worker).speedFactor() *
            config_.restore_cost_fraction),
        1);
    c.provision_ends_at = now() + cost;
    c.bound_queue.push_back(request_index);
    noteMemory();

    const cluster::ContainerId cid = c.id;
    queue_.schedule(c.provision_ends_at,
                    sim::EventTag{kEvProvisionComplete, cid, 0},
                    [this, cid](sim::SimTime) {
                        handleProvisionComplete(cid);
                    });
}

void
Engine::evictContainer(cluster::ContainerId id, bool expired)
{
    cluster::Container &c = cluster_.container(id);
    if (c.active > 0 || c.provisioning() || c.evicted())
        throw std::logic_error("Engine: evicting a non-idle container");
    if (c.compressed())
        --compressed_live_;
    FunctionState &fs = states_[c.function];

    if (fs.isAvailable(c))
        fs.removeAvailable(c, cluster_.slab());
    if (c.idle_slot >= 0)
        removeFromWorkerIdle(c);
    if (c.cached_slot >= 0)
        fs.removeCached(c, cluster_.slab());

    if (c.use_count == 0)
        ++metrics_.wasted_cold_starts;
    if (fs.tracked_spec_container == c.id)
        reportSpeculativeOutcome(fs, c, /*reused=*/false);

    policy_.keep_alive->onEvicted(*this, c);
    if (policy_.agent)
        policy_.agent->onContainerEvicted(*this, c);

    cluster_.destroyContainer(id);
    if (expired)
        ++metrics_.expirations;
    else
        ++metrics_.evictions;
    noteMemory();
}

void
Engine::reapContainer(cluster::ContainerId id, bool expired)
{
    evictContainer(id, expired);
    retryDeferred();
}

bool
Engine::prewarm(trace::FunctionId id)
{
    const DeferredProvision req{id, cluster::ProvisionReason::Prewarm, -1};
    if (!tryStartProvision(req))
        return false;
    ++metrics_.prewarms;
    return true;
}

void
Engine::addToWorkerIdle(cluster::Container &c)
{
    assert(c.idle_slot < 0);
    auto &list = worker_idle_[c.worker];
    c.idle_slot = static_cast<std::int32_t>(list.size());
    list.push_back(c.id);
    ++worker_idle_epoch_[c.worker];
}

void
Engine::removeFromWorkerIdle(cluster::Container &c)
{
    auto &list = worker_idle_[c.worker];
    const std::int32_t slot = c.idle_slot;
    if (slot < 0 || static_cast<std::size_t>(slot) >= list.size() ||
        list[static_cast<std::size_t>(slot)] != c.id) {
        throw std::logic_error("Engine: corrupt worker idle list");
    }
    const auto idx = static_cast<std::size_t>(slot);
    list[idx] = list.back();
    cluster_.slab()[list[idx]].idle_slot = slot;
    list.pop_back();
    c.idle_slot = -1;
    ++worker_idle_epoch_[c.worker];
}

void
Engine::noteMemory()
{
    const std::int64_t used = cluster_.totalUsedMb();
    metrics_.noteMemoryUsage(now(), used);
    if (config_.record_timeline) {
        metrics_.timeline.memory_mb.record(now(),
                                           static_cast<double>(used));
    }
}

void
Engine::reportSpeculativeOutcome(FunctionState &fs, cluster::Container &c,
                                 bool reused)
{
    const sim::SimTime gap = now() - fs.tracked_spec_ready_at;
    fs.tracked_spec_container = cluster::kInvalidContainer;
    policy_.scaling->onSpeculativeOutcome(*this, c.function, gap, reused);
}

sim::SimTime
Engine::estimateExecTime(trace::FunctionId id) const
{
    const FunctionState &fs = states_.at(id);
    const auto &window = fs.execWindow();
    FunctionState::EstimateCache &memo = fs.execEstimateCache();
    if (memo.epoch == window.changeEpoch())
        return memo.value;
    sim::SimTime value;
    if (window.empty()) {
        value = trace_.function(id).median_exec_us;
    } else {
        value = static_cast<sim::SimTime>(
            config_.te_percentile < 0.0
                ? window.mean()
                : window.percentile(config_.te_percentile));
    }
    memo.value = value;
    memo.epoch = window.changeEpoch();
    return value;
}

sim::SimTime
Engine::estimateColdTime(trace::FunctionId id) const
{
    const FunctionState &fs = states_.at(id);
    const auto &window = fs.coldWindow();
    FunctionState::EstimateCache &memo = fs.coldEstimateCache();
    if (memo.epoch == window.changeEpoch())
        return memo.value;
    const sim::SimTime value = window.empty()
        ? trace_.function(id).cold_start_us
        : static_cast<sim::SimTime>(window.median());
    memo.value = value;
    memo.epoch = window.changeEpoch();
    return value;
}

sim::SimTime
Engine::nextArrivalAfter(trace::FunctionId id, sim::SimTime t) const
{
    const auto arrivals = trace_.arrivalsOf(id);
    const auto it = std::upper_bound(arrivals.begin(), arrivals.end(), t);
    return it == arrivals.end() ? sim::kTimeInfinity : *it;
}

sim::EventCallback
Engine::eventFromTag(const sim::EventTag &tag)
{
    switch (tag.kind) {
      case kEvArrival: {
        const std::uint64_t index = tag.b;
        return [this, index](sim::SimTime) { handleArrival(index); };
      }
      case kEvMaintenance:
        return [this](sim::SimTime) { handleMaintenance(); };
      case kEvExecComplete: {
        const cluster::ContainerId cid = tag.a;
        const std::uint64_t request_index = tag.b;
        return [this, cid, request_index](sim::SimTime) {
            handleExecutionComplete(cid, request_index);
        };
      }
      case kEvProvisionComplete: {
        const cluster::ContainerId cid = tag.a;
        return [this, cid](sim::SimTime) { handleProvisionComplete(cid); };
      }
      default:
        return sim::EventCallback{};
    }
}

void
Engine::saveState(sim::StateWriter &writer) const
{
    if (live_)
        throw std::logic_error(
            "Engine: live (stream-driven) runs cannot be checkpointed");
    writer.put<std::uint8_t>(ran_ ? 1 : 0);
    writer.put<std::uint8_t>(tick_scheduled_ ? 1 : 0);
    writer.put<std::uint8_t>(in_retry_ ? 1 : 0);
    writer.put(arrival_cursor_);
    writer.put(round_robin_cursor_);
    writer.put(compressed_live_);
    writer.put(outstanding_requests_);
    writer.put(completed_requests_);

    std::uint64_t rng_state[4];
    rng_.saveState(rng_state);
    writer.putBytes(rng_state, sizeof rng_state);

    queue_.saveState(writer);
    cluster_.saveState(writer);

    writer.put<std::uint64_t>(worker_idle_.size());
    for (const auto &list : worker_idle_)
        writer.putVector(list);
    writer.putVector(worker_idle_epoch_);

    writer.put<std::uint64_t>(states_.size());
    for (const FunctionState &fs : states_)
        fs.saveState(writer);

    writer.put<std::uint64_t>(deferred_.size());
    for (const DeferredProvision &d : deferred_) {
        writer.put(d.function);
        writer.put(static_cast<std::uint8_t>(d.reason));
        writer.put(d.bound_request);
    }

    metrics_.saveState(writer);
    policy_.scaling->saveState(writer);
    policy_.keep_alive->saveState(writer);
    writer.put<std::uint8_t>(policy_.agent ? 1 : 0);
    if (policy_.agent)
        policy_.agent->saveState(writer);
}

void
Engine::loadState(sim::StateReader &reader)
{
    if (ran_)
        throw std::logic_error(
            "Engine::loadState: restore requires a fresh engine");

    ran_ = reader.get<std::uint8_t>() != 0;
    tick_scheduled_ = reader.get<std::uint8_t>() != 0;
    in_retry_ = reader.get<std::uint8_t>() != 0;
    arrival_cursor_ = reader.get<std::uint64_t>();
    round_robin_cursor_ = reader.get<std::uint64_t>();
    compressed_live_ = reader.get<std::int64_t>();
    outstanding_requests_ = reader.get<std::uint64_t>();
    completed_requests_ = reader.get<std::uint64_t>();
    if (arrival_cursor_ > trace_.requestCount() ||
        completed_requests_ > trace_.requestCount()) {
        throw std::runtime_error(
            "Engine: checkpoint does not match the workload "
            "(request cursor out of range)");
    }

    std::uint64_t rng_state[4];
    reader.getBytes(rng_state, sizeof rng_state);
    rng_.loadState(rng_state);

    queue_.loadState(reader, [this](const sim::EventTag &tag) {
        return eventFromTag(tag);
    });
    cluster_.loadState(reader);

    const std::uint64_t idle_lists = reader.get<std::uint64_t>();
    if (idle_lists != worker_idle_.size())
        throw std::runtime_error(
            "Engine: checkpoint does not match the cluster "
            "(worker count mismatch)");
    for (auto &list : worker_idle_)
        list = reader.getVector<cluster::ContainerId>();
    worker_idle_epoch_ = reader.getVector<std::uint64_t>();
    if (worker_idle_epoch_.size() != worker_idle_.size())
        throw std::runtime_error("Engine: corrupt worker idle epochs");

    const std::uint64_t function_count = reader.get<std::uint64_t>();
    if (function_count != states_.size())
        throw std::runtime_error(
            "Engine: checkpoint does not match the workload "
            "(function count mismatch)");
    for (FunctionState &fs : states_)
        fs.loadState(reader);

    deferred_.clear();
    const std::uint64_t deferred_count = reader.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < deferred_count; ++i) {
        DeferredProvision d;
        d.function = reader.get<trace::FunctionId>();
        d.reason =
            static_cast<cluster::ProvisionReason>(reader.get<std::uint8_t>());
        d.bound_request = reader.get<std::int64_t>();
        deferred_.push_back(d);
    }

    metrics_.loadState(reader);
    policy_.scaling->loadState(reader);
    policy_.keep_alive->loadState(reader);
    const bool had_agent = reader.get<std::uint8_t>() != 0;
    if (had_agent != (policy_.agent != nullptr))
        throw std::runtime_error(
            "Engine: checkpoint does not match the policy bundle "
            "(agent presence mismatch)");
    if (policy_.agent)
        policy_.agent->loadState(reader);
}

void
Engine::swapPolicy(OrchestrationPolicy policy)
{
    if (!policy.scaling || !policy.keep_alive)
        throw std::invalid_argument(
            "Engine::swapPolicy: policy bundle incomplete");
    if (policy.scaling->wantsBusyCompletionView() && !track_busy_ends_) {
        throw std::logic_error(
            "Engine::swapPolicy: the new scaling policy needs the "
            "busy-completion view, which the outgoing policy did not "
            "maintain (per-function busy-end history is unrecoverable)");
    }
    policy_ = std::move(policy);
    // A narrower view requirement is fine: the history keeps being
    // maintained (track_busy_ends_ stays as constructed) so a later
    // swap back would still be sound.
}

void
Engine::reseed(std::uint64_t seed)
{
    rng_ = sim::Rng(seed);
}

void
Engine::setTePercentile(double percentile)
{
    config_.te_percentile = percentile;
    // Drop every memoized estimate: the memo epoch only tracks window
    // *content* changes, so a value computed under the old percentile
    // would otherwise survive until the next window mutation.
    for (const FunctionState &fs : states_) {
        fs.execEstimateCache() = FunctionState::EstimateCache{};
        fs.coldEstimateCache() = FunctionState::EstimateCache{};
    }
}

const std::vector<sim::SimTime> &
Engine::busyCompletionView(trace::FunctionId id) const
{
    if (!track_busy_ends_) {
        throw std::logic_error(
            "Engine::busyCompletionView: scaling policy did not opt in "
            "(override wantsBusyCompletionView)");
    }
    return states_.at(id).busyEndTimes();
}

} // namespace cidre::core
