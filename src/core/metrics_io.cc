#include "core/metrics_io.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace cidre::core {

namespace {

/** Minimal JSON emitter for flat objects. */
class JsonObject
{
  public:
    explicit JsonObject(std::ostream &out) : out_(out) { out_ << "{"; }

    void field(const char *name, double value)
    {
        sep();
        out_ << "\"" << name << "\": " << std::setprecision(10) << value;
    }

    void field(const char *name, std::uint64_t value)
    {
        sep();
        out_ << "\"" << name << "\": " << value;
    }

    void raw(const char *name, const std::string &json)
    {
        sep();
        out_ << "\"" << name << "\": " << json;
    }

    void close() { out_ << "}"; }

  private:
    void sep()
    {
        if (!first_)
            out_ << ", ";
        first_ = false;
    }

    std::ostream &out_;
    bool first_ = true;
};

std::string
percentilesJson(const stats::Histogram &histogram)
{
    if (histogram.count() == 0)
        return "null";
    std::string out = "{";
    const double qs[] = {0.25, 0.50, 0.75, 0.90, 0.99};
    const char *names[] = {"p25", "p50", "p75", "p90", "p99"};
    for (int i = 0; i < 5; ++i) {
        if (i)
            out += ", ";
        out += "\"" + std::string(names[i]) +
            "_ms\": " + std::to_string(histogram.percentile(qs[i]) / 1e3);
    }
    out += "}";
    return out;
}

} // namespace

void
writeMetricsJson(const RunMetrics &metrics, std::ostream &out)
{
    JsonObject json(out);
    json.field("requests", metrics.total());
    json.field("warm", metrics.count(StartType::Warm));
    json.field("delayed_warm", metrics.count(StartType::DelayedWarm));
    json.field("cold", metrics.count(StartType::Cold));
    json.field("restored", metrics.count(StartType::Restored));
    json.field("cold_ratio", metrics.coldRatio());
    json.field("delayed_ratio", metrics.delayedRatio());
    json.field("warm_ratio", metrics.warmRatio());
    json.field("avg_overhead_ratio_pct", metrics.avgOverheadRatioPct());
    json.field("avg_overhead_ms", metrics.avgOverheadMs());
    json.raw("overhead", percentilesJson(metrics.overheadHistogram()));
    json.raw("e2e", percentilesJson(metrics.e2eHistogram()));
    json.field("containers_created", metrics.containers_created);
    json.field("provisioned_mb", metrics.provisioned_mb);
    json.field("evictions", metrics.evictions);
    json.field("expirations", metrics.expirations);
    json.field("compressions", metrics.compressions);
    json.field("prewarms", metrics.prewarms);
    json.field("wasted_cold_starts", metrics.wasted_cold_starts);
    json.field("deferred_provisions", metrics.deferred_provisions);
    json.field("cancelled_provisions", metrics.cancelled_provisions);
    json.field("avg_memory_gb", metrics.avgMemoryGb());
    json.field("peak_memory_gb", metrics.peakMemoryGb());
    json.field("makespan_s", sim::toSec(metrics.makespan()));
    json.close();
    out << "\n";
}

void
writeMetricsJsonFile(const RunMetrics &metrics, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeMetricsJsonFile: cannot open " +
                                 path);
    writeMetricsJson(metrics, out);
    if (!out)
        throw std::runtime_error("writeMetricsJsonFile: write failed for " +
                                 path);
}

std::vector<FunctionBreakdown>
perFunctionBreakdown(trace::TraceView workload,
                     const RunMetrics &metrics, std::size_t top)
{
    if (metrics.outcomes.size() != workload.requestCount()) {
        throw std::invalid_argument(
            "perFunctionBreakdown: run without record_per_request");
    }
    std::vector<FunctionBreakdown> all(workload.functionCount());
    for (std::size_t i = 0; i < metrics.outcomes.size(); ++i) {
        const trace::FunctionId function = workload.requestFunction(i);
        const RequestOutcome &outcome = metrics.outcomes[i];
        FunctionBreakdown &fb = all[function];
        fb.function = function;
        ++fb.requests;
        fb.cold += outcome.type == StartType::Cold;
        fb.delayed += outcome.type == StartType::DelayedWarm;
        fb.total_wait_ms += sim::toMs(outcome.wait_us);
    }
    for (auto &fb : all) {
        if (fb.function != trace::kInvalidFunction) {
            fb.name = workload.function(fb.function).name;
            fb.avg_wait_ms = fb.requests
                ? fb.total_wait_ms / static_cast<double>(fb.requests)
                : 0.0;
        }
    }
    all.erase(std::remove_if(all.begin(), all.end(),
                             [](const FunctionBreakdown &fb) {
                                 return fb.requests == 0;
                             }),
              all.end());
    std::sort(all.begin(), all.end(),
              [](const FunctionBreakdown &a, const FunctionBreakdown &b) {
                  return a.total_wait_ms > b.total_wait_ms;
              });
    if (all.size() > top)
        all.resize(top);
    return all;
}

} // namespace cidre::core
