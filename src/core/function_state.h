/**
 * @file
 * Per-function runtime state maintained by the orchestration engine.
 *
 * This mirrors OpenLambda's "function manager" as extended by the paper
 * (§4): the per-function FIFO channel of outstanding requests, container
 * membership lists, the sliding-window statistics CSS consumes, and the
 * aggregates behind Freq(F(c)) of Eq. 4.
 */

#ifndef CIDRE_CORE_FUNCTION_STATE_H
#define CIDRE_CORE_FUNCTION_STATE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/container.h"
#include "sim/time.h"
#include "stats/sliding_window.h"
#include "trace/function_profile.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::core {

/** One entry in a function's pending-request channel. */
struct PendingRequest
{
    std::uint64_t request_index;
    sim::SimTime enqueued_at;
};

/** Mutable per-function orchestration state. */
class FunctionState
{
  public:
    FunctionState(trace::FunctionId id, sim::SimTime window_horizon,
                  std::size_t window_cap);

    trace::FunctionId id() const { return id_; }

    // --- container membership (engine-maintained) ----------------------

    /** Containers of this function that can accept a request now. */
    const std::vector<cluster::ContainerId> &available() const
    {
        return available_;
    }

    /** All cached (live or compressed) containers: the F(c) of Eq. 3. */
    const std::vector<cluster::ContainerId> &cached() const
    {
        return cached_;
    }

    /** |F(c)|: number of cached warm containers of this function. */
    std::uint32_t cachedCount() const
    {
        return static_cast<std::uint32_t>(cached_.size());
    }

    std::uint32_t busyCount() const { return busy_count_; }
    std::uint32_t provisioningCount() const { return provisioning_count_; }

    // Membership mutators (called only by the engine).
    void addAvailable(cluster::Container &c);
    void removeAvailable(cluster::Container &c,
                         std::deque<cluster::Container> &slab);
    bool isAvailable(const cluster::Container &c) const;
    void addCached(cluster::Container &c);
    void removeCached(cluster::Container &c,
                      std::deque<cluster::Container> &slab);
    void noteBusy(bool became_busy);
    void noteProvisioning(bool started);

    // --- the request channel -------------------------------------------

    std::deque<PendingRequest> &channel() { return channel_; }
    const std::deque<PendingRequest> &channel() const { return channel_; }

    // --- busy-completion view (oracle scaling) ---------------------------

    /**
     * Ascending completion times of this function's busy containers,
     * maintained incrementally by the engine at dispatch/complete (only
     * when the scaling policy opted in via wantsBusyCompletionView()).
     */
    const std::vector<sim::SimTime> &busyEndTimes() const
    {
        return busy_ends_;
    }

    void busyEndInsert(sim::SimTime t);
    void busyEndErase(sim::SimTime t);

    // --- invocation aggregates (Eq. 4) ----------------------------------

    /** Total invocations this function ever received (n_F). */
    std::uint64_t totalInvocations() const { return total_invocations_; }

    /** Record one arrival at @p now. */
    void noteArrival(sim::SimTime now);

    /**
     * Freq(F(c)) of Eq. 4: average invocations per minute since the
     * function's first request.  Decays as time passes without use.
     */
    double freqPerMinute(sim::SimTime now) const;

    /** Arrival timestamps within the recent window (rate estimators). */
    stats::SlidingWindow &arrivalWindow() { return arrival_window_; }
    const stats::SlidingWindow &arrivalWindow() const
    {
        return arrival_window_;
    }

    // --- CSS statistics (§3.2) ------------------------------------------

    /** Completed execution durations (source of T_e). */
    stats::SlidingWindow &execWindow() { return exec_window_; }
    const stats::SlidingWindow &execWindow() const { return exec_window_; }

    /** Observed cold-start latencies (source of T_p). */
    stats::SlidingWindow &coldWindow() { return cold_window_; }
    const stats::SlidingWindow &coldWindow() const { return cold_window_; }

    /**
     * Memo slot for a window-derived estimate: valid while @c epoch
     * equals the source window's changeEpoch().  UINT64_MAX (never a
     * real epoch) marks "not yet computed".
     */
    struct EstimateCache
    {
        sim::SimTime value = 0;
        std::uint64_t epoch = UINT64_MAX;
    };

    /** Memo for Engine::estimateExecTime (T_e). */
    EstimateCache &execEstimateCache() const { return te_cache_; }
    /** Memo for Engine::estimateColdTime (T_p). */
    EstimateCache &coldEstimateCache() const { return tp_cache_; }

    /**
     * Bumped whenever an input of the Eq. 3 priority bonus other than
     * time changes (arrival count, cached-container count): CIP reuses
     * a bonus computed at the same (now, priorityEpoch) pair.
     */
    std::uint64_t priorityEpoch() const { return priority_epoch_; }

    /** CSS per-function toggle: is the cold-start (BSS) path enabled? */
    bool bss_enabled = true;

    /** T_i: idle gap of the last speculatively created container (µs). */
    double t_i_us = 0.0;

    /** T_d: queuing delay of the most recent delayed warm start (µs). */
    double t_d_us = 0.0;

    /** The speculative container currently being tracked for T_i. */
    cluster::ContainerId tracked_spec_container = cluster::kInvalidContainer;
    sim::SimTime tracked_spec_ready_at = 0;

    /**
     * PerHead speculation: the last channel-head request a speculative
     * decision was issued for (prevents double provisioning when the
     * same head is re-evaluated across events).
     */
    std::uint64_t last_head_evaluated = UINT64_MAX;

    /**
     * Checkpoint/restore of all mutable state.  The estimate memos are
     * deliberately dropped (they re-validate against the windows'
     * change epochs, so the first post-restore query recomputes the
     * same value).
     */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    trace::FunctionId id_;
    std::vector<cluster::ContainerId> available_;
    std::vector<cluster::ContainerId> cached_;
    std::uint32_t busy_count_ = 0;
    std::uint32_t provisioning_count_ = 0;
    std::deque<PendingRequest> channel_;

    std::uint64_t total_invocations_ = 0;
    sim::SimTime first_request_at_ = -1;
    std::uint64_t priority_epoch_ = 0;

    std::vector<sim::SimTime> busy_ends_;

    stats::SlidingWindow exec_window_;
    stats::SlidingWindow cold_window_;
    stats::SlidingWindow arrival_window_;

    mutable EstimateCache te_cache_;
    mutable EstimateCache tp_cache_;
};

} // namespace cidre::core

#endif // CIDRE_CORE_FUNCTION_STATE_H
