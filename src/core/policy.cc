#include "core/policy.h"

namespace cidre::core {

// Default no-op implementations live here (not inline in the header) so
// the vtables have a single home translation unit.

void
ScalingPolicy::onSpeculativeOutcome(Engine &, trace::FunctionId,
                                    sim::SimTime, bool)
{
}

void
ScalingPolicy::onDispatch(Engine &, const trace::Request &, StartType,
                          sim::SimTime)
{
}

void
KeepAlivePolicy::onAdmit(Engine &, cluster::Container &, double)
{
}

void
KeepAlivePolicy::onUse(Engine &, cluster::Container &, StartType)
{
}

void
KeepAlivePolicy::onIdle(Engine &, cluster::Container &)
{
}

void
KeepAlivePolicy::onEvicted(Engine &, const cluster::Container &)
{
}

void
KeepAlivePolicy::collectExpired(Engine &, sim::SimTime,
                                std::vector<cluster::ContainerId> &)
{
}

void
ClusterAgent::onTick(Engine &, sim::SimTime)
{
}

void
ClusterAgent::onRequestObserved(Engine &, const trace::Request &)
{
}

sim::SimTime
ClusterAgent::provisionCost(Engine &, const trace::FunctionProfile &,
                            cluster::WorkerId, sim::SimTime base_cost)
{
    return base_cost;
}

void
ClusterAgent::onContainerEvicted(Engine &, const cluster::Container &)
{
}

void
ScalingPolicy::saveState(sim::StateWriter &) const
{
}

void
ScalingPolicy::loadState(sim::StateReader &)
{
}

void
KeepAlivePolicy::saveState(sim::StateWriter &) const
{
}

void
KeepAlivePolicy::loadState(sim::StateReader &)
{
}

void
ClusterAgent::saveState(sim::StateWriter &) const
{
}

void
ClusterAgent::loadState(sim::StateReader &)
{
}

} // namespace cidre::core
