/**
 * @file
 * Orchestration engine configuration.
 */

#ifndef CIDRE_CORE_CONFIG_H
#define CIDRE_CORE_CONFIG_H

#include <cstdint>

#include "cluster/cluster.h"
#include "sim/time.h"

namespace cidre::core {

/**
 * How speculative (BSS/CSS) provisions are issued.
 *
 * PerRequest follows §3.2 literally: every request choosing the
 * speculative path starts its own cold start, giving the worst-case
 * "never worse than a cold start" guarantee.  PerHead follows the §4
 * OpenLambda implementation: the per-function channel is evaluated at
 * its head, so at most one speculative provision is issued each time a
 * new request reaches the head — far fewer wasted cold starts under
 * deep bursts, at the cost of the per-request guarantee.
 */
enum class SpeculationMode : std::uint8_t
{
    PerRequest,
    PerHead,
};

/** Where a new container is provisioned. */
enum class PlacementPolicy : std::uint8_t
{
    /** Worker with the most free memory (default; balances occupancy). */
    MostFree,
    /** Rotate across workers regardless of occupancy. */
    RoundRobin,
    /**
     * Prefer the fastest (lowest speed-factor) worker that fits,
     * breaking ties by free memory — the placement IceBreaker-style
     * heterogeneity-aware systems use.
     */
    FastestFirst,
};

/**
 * Everything a simulation run needs besides the trace and the policy.
 *
 * Defaults reproduce the paper's main setup: a 3-worker cluster with a
 * 100 GB aggregate keep-alive cache, single-threaded containers, CSS
 * statistics over a 15-minute sliding window with a median T_e estimate.
 */
struct EngineConfig
{
    cluster::ClusterConfig cluster;

    /** Speculative-provision discipline (see SpeculationMode). */
    SpeculationMode speculation_mode = SpeculationMode::PerRequest;

    /** New-container placement strategy. */
    PlacementPolicy placement = PlacementPolicy::MostFree;

    /**
     * Drop memory-deferred speculative provisions whose channel has
     * already drained.  §3.2's BSS always pays for its cold starts, so
     * this defaults off; turning it on models an admission-controlled
     * variant (ablation knob).
     */
    bool cancel_stale_speculation = false;

    /** Intra-container thread slots (Fig. 21 knob). */
    std::uint32_t container_threads = 1;

    /** Period of the maintenance tick (TTL expiry, pre-warm agents). */
    sim::SimTime maintenance_interval = sim::sec(1);

    /** Horizon of the CSS history windows (Fig. 18 knob). */
    sim::SimTime stats_window = sim::minutes(15);

    /** Retention cap of each history window (see stats::SlidingWindow). */
    std::size_t window_max_samples = 512;

    /**
     * Which percentile of the execution-time window CSS uses as T_e
     * (Fig. 17 knob); a negative value selects the mean.
     */
    double te_percentile = 0.5;

    /** Seed for any stochastic policy behaviour (placement jitter etc.). */
    std::uint64_t seed = 42;

    /**
     * Intra-trial sharding: partition the cluster into this many
     * independent cells (each a contiguous slice of the workers with a
     * proportional share of the memory) and assign every function to
     * exactly one cell.  Placement, reclaim, the deferred-provision
     * queue and the maintenance tick are all cell-local, which is what
     * makes a sharded trial's result independent of how many threads
     * execute it (see core::ShardedEngine).
     *
     * 1 (the default) is the monolithic cluster of the paper's setup.
     * Values > 1 are a *model* parameter — a 4-cell cluster is a
     * different (partitioned) system than a monolithic one — and are
     * only accepted by ShardedEngine; the plain Engine rejects them so
     * a partitioned config cannot silently run unpartitioned.
     */
    std::uint32_t shard_cells = 1;

    /** Retain a per-request outcome log (needed by the what-if studies). */
    bool record_per_request = false;

    /** Populate RunMetrics::timeline (memory / cold-start dynamics). */
    bool record_timeline = false;

    /**
     * Invocation-overhead SLO: requests waiting longer than this count
     * as violations in RunMetrics::slo_violations.  <= 0 disables.
     */
    sim::SimTime slo_us = 0;

    /** CodeCrunch: footprint shrink factor for compressed containers. */
    double compression_ratio = 3.0;

    /** CodeCrunch: restore latency as a fraction of the cold start. */
    double restore_cost_fraction = 0.15;

    /** Validate invariants; throws std::invalid_argument on bad values. */
    void validate() const;
};

} // namespace cidre::core

#endif // CIDRE_CORE_CONFIG_H
