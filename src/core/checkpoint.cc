#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "sim/serialize.h"
#include "trace/trace_image.h"

namespace cidre::core {

namespace {

constexpr char kMagic[8] = {'C', 'I', 'D', 'R', 'E', 'C', 'K', 'P'};

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error("Checkpoint: " + path + ": " + why);
}

} // namespace

std::uint64_t
checkpointFingerprint(const EngineConfig &config,
                      const std::string &policy_name,
                      trace::TraceView workload)
{
    // Serialize every run-defining input into a flat buffer and digest
    // it with the same checksum the payload uses.  Field order is part
    // of the format: changing it invalidates old checkpoints, which is
    // exactly what bumping kCheckpointVersion is for.
    sim::StateWriter writer;
    writer.put(config.cluster.workers);
    writer.put(config.cluster.total_memory_mb);
    writer.putVector(config.cluster.speed_factors);
    writer.putVector(config.cluster.worker_memory_mb);
    writer.put(static_cast<std::uint8_t>(config.speculation_mode));
    writer.put(static_cast<std::uint8_t>(config.placement));
    writer.put<std::uint8_t>(config.cancel_stale_speculation ? 1 : 0);
    writer.put(config.container_threads);
    writer.put(config.maintenance_interval);
    writer.put(config.stats_window);
    writer.put<std::uint64_t>(config.window_max_samples);
    writer.put(config.te_percentile);
    writer.put(config.seed);
    writer.put(config.shard_cells);
    writer.put<std::uint8_t>(config.record_per_request ? 1 : 0);
    writer.put<std::uint8_t>(config.record_timeline ? 1 : 0);
    writer.put(config.slo_us);
    writer.put(config.compression_ratio);
    writer.put(config.restore_cost_fraction);
    writer.putString(policy_name);
    writer.put<std::uint64_t>(workload.functionCount());
    writer.put<std::uint64_t>(workload.requestCount());
    const std::vector<std::byte> bytes = writer.release();
    return trace::traceImageChecksum(bytes.data(), bytes.size());
}

void
writeCheckpointFile(const std::string &path, std::uint64_t fingerprint,
                    const std::vector<std::byte> &payload)
{
    CheckpointHeader header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kCheckpointVersion;
    header.header_bytes = sizeof(CheckpointHeader);
    header.file_bytes = sizeof(CheckpointHeader) + payload.size();
    header.payload_checksum =
        trace::traceImageChecksum(payload.data(), payload.size());
    header.fingerprint = fingerprint;

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fail(path, "cannot open for writing");
        out.write(reinterpret_cast<const char *>(&header), sizeof header);
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            fail(path, "write failed");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fail(path, "rename failed");
    }
}

CheckpointBuffer
makeCheckpointBuffer(std::uint64_t fingerprint,
                     std::vector<std::byte> payload)
{
    CheckpointBuffer buffer;
    std::memcpy(buffer.header.magic, kMagic, sizeof kMagic);
    buffer.header.version = kCheckpointVersion;
    buffer.header.header_bytes = sizeof(CheckpointHeader);
    buffer.header.file_bytes = sizeof(CheckpointHeader) + payload.size();
    buffer.header.payload_checksum =
        trace::traceImageChecksum(payload.data(), payload.size());
    buffer.header.fingerprint = fingerprint;
    buffer.payload = std::move(payload);
    return buffer;
}

const std::vector<std::byte> &
openCheckpointBuffer(const CheckpointBuffer &buffer,
                     std::uint64_t expected_fingerprint)
{
    // Same validation ladder as the file path: the buffer is typically
    // long-lived and shared across worker threads, so a stray write
    // anywhere in it must be caught here rather than surface as silent
    // divergence downstream.
    const CheckpointHeader &header = buffer.header;
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        fail("<memory>", "not a checkpoint buffer (bad magic)");
    if (header.version != kCheckpointVersion) {
        fail("<memory>", "unsupported checkpoint version " +
                             std::to_string(header.version) +
                             " (expected " +
                             std::to_string(kCheckpointVersion) + ")");
    }
    if (header.header_bytes != sizeof(CheckpointHeader))
        fail("<memory>", "malformed checkpoint (header size mismatch)");
    if (header.file_bytes !=
        sizeof(CheckpointHeader) + buffer.payload.size()) {
        fail("<memory>",
             "malformed checkpoint (payload size does not match header)");
    }
    if (trace::traceImageChecksum(buffer.payload.data(),
                                  buffer.payload.size()) !=
        header.payload_checksum) {
        fail("<memory>", "checksum mismatch (corrupt checkpoint)");
    }
    if (header.fingerprint != expected_fingerprint) {
        fail("<memory>",
             "fingerprint mismatch (checkpoint was written by a "
             "different run configuration)");
    }
    return buffer.payload;
}

std::vector<std::byte>
readCheckpointFile(const std::string &path,
                   std::uint64_t expected_fingerprint)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        fail(path, "cannot open");
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);

    if (file_bytes < sizeof(CheckpointHeader))
        fail(path, "truncated checkpoint (file smaller than header)");

    CheckpointHeader header{};
    in.read(reinterpret_cast<char *>(&header), sizeof header);
    if (!in)
        fail(path, "truncated checkpoint (file smaller than header)");
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
        fail(path, "not a .ckpt checkpoint (bad magic)");
    if (header.version != kCheckpointVersion) {
        fail(path, "unsupported .ckpt version " +
                       std::to_string(header.version) + " (expected " +
                       std::to_string(kCheckpointVersion) + ")");
    }
    if (header.header_bytes != sizeof(CheckpointHeader))
        fail(path, "malformed checkpoint (header size mismatch)");
    if (file_bytes < header.file_bytes)
        fail(path, "truncated checkpoint (file shorter than header claims)");
    if (file_bytes > header.file_bytes)
        fail(path, "malformed checkpoint (file longer than header claims)");

    std::vector<std::byte> payload(header.file_bytes -
                                   sizeof(CheckpointHeader));
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (!in)
        fail(path, "truncated checkpoint (file shorter than header claims)");

    if (trace::traceImageChecksum(payload.data(), payload.size()) !=
        header.payload_checksum) {
        fail(path, "checksum mismatch (corrupt checkpoint)");
    }
    if (header.fingerprint != expected_fingerprint) {
        fail(path, "fingerprint mismatch (checkpoint was written by a "
                   "different run configuration)");
    }
    return payload;
}

} // namespace cidre::core
