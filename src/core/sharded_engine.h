/**
 * @file
 * Intra-trial sharded simulation: one large trial executed as a set of
 * independent cluster cells, deterministically, across a thread pool.
 *
 * ## The model
 *
 * EngineConfig::shard_cells partitions the simulated system itself:
 * the workers are split into `cells` contiguous slices (each with its
 * proportional share of the keep-alive budget) and every function is
 * pinned to exactly one cell — the longest-processing-time assignment
 * over per-function request counts, so cells carry near-equal event
 * volume even under Zipf-skewed popularity.  Placement sweeps, memory
 * reclaim, the deferred-provision FIFO and the maintenance tick are all
 * cell-local.  This mirrors how production FaaS fleets actually scale
 * out (placement cells / stamps) and is what makes sharding sound: the
 * monolithic engine's decision path is globally coupled (every
 * provision may scan every worker and evict any function's container),
 * so its exact event interleaving cannot be reproduced by concurrent
 * shards — but a partitioned cluster factorizes *by construction*.
 *
 * ## The determinism contract
 *
 * A cell is simulated by an ordinary single-threaded core::Engine on
 * its sub-trace and sub-cluster, with its RNG substream derived as
 * sim::substreamSeed(config.seed, cell) — position-keyed, like the
 * experiment runner's per-trial streams.  Cells share nothing mutable,
 * results land at their cell index, and the final reduction folds them
 * in canonical cell order on the calling thread.  Consequently the
 * number of threads driving the cells (the `--shards` knob) is a pure
 * wall-clock knob: `--shards 1`, `2` and `4` produce bit-identical
 * metrics, and with shard_cells == 1 the sharded runtime is a perfect
 * pass-through of the plain Engine (same trace object, same seed, same
 * bytes out — pinned by the golden tests).
 *
 * What changes results is the *model* parameter shard_cells itself:
 * a 4-cell cluster is a different (partitioned) system than the
 * monolithic one, exactly as a 4-stamp deployment differs from one
 * giant stamp.  Pick cells once per experiment; sweep threads freely.
 *
 * ## Execution (wall-clock only — never results)
 *
 * ShardExecOptions carries the knobs that make the sharded run *fast*
 * without touching what it computes:
 *
 *  - **Placement.**  pin_cpus maps cell (one-shot mode) or team index
 *    (stepped mode) to a CPU; bodies pin via sim::ScopedAffinity before
 *    touching cell state.  Cells are built lazily *on the thread that
 *    runs them* (first-touch), so a cell's sub-trace, cluster state and
 *    metrics pages are allocated on the NUMA node of the worker that
 *    will simulate it.  CellRuntime is cache-line aligned and per-cell
 *    counters are padded, so neighbouring cells never false-share.
 *
 *  - **Epochs.**  epoch_events > 0 selects lockstep-epoch execution on
 *    a resident worker team: one parallelFor dispatch for the whole
 *    trial, workers statically own cells (team index w owns cells
 *    k % W == w) and meet at a sense-reversing EpochBarrier between
 *    epochs.  The epoch length adapts toward the events-per-epoch
 *    target from *global* per-epoch sums, so the sequence of epoch
 *    boundaries — like everything else — is a pure function of the
 *    workload and config, never of the thread count.  Since cells are
 *    mutually independent, epoch boundaries cannot change results at
 *    all; they exist so future cross-cell couplings (and progress
 *    telemetry) have a deterministic synchronization spine that costs
 *    nanoseconds, not futex round trips, per crossing.
 */

#ifndef CIDRE_CORE_SHARDED_ENGINE_H
#define CIDRE_CORE_SHARDED_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "sim/epoch_barrier.h"
#include "sim/thread_pool.h"
#include "sim/topology.h"
#include "trace/trace_view.h"

namespace cidre::core {

/** Floor of requests per cell enforced by autoCellCount(). */
inline constexpr std::uint64_t kMinRequestsPerCell = 4096;

/** Default adaptive target of `--epoch-events` stepped execution. */
inline constexpr std::uint64_t kDefaultEpochEvents = 1ull << 15;

/**
 * The `--cells auto` planner: derive a cell count from the workload,
 * the config and the machine.  Aims for one cell per unit of real
 * parallelism — max(shard_threads, physical cores) — then clamps so
 * the partition stays sound: at most one cell per cluster worker, per
 * trace function, and per kMinRequestsPerCell requests (tiny traces
 * do not amortize partition overhead).  Always >= 1.
 *
 * The returned count is machine-dependent *by design* (that is the
 * point of auto); determinism is preserved because the count is
 * resolved once, recorded in EngineConfig::shard_cells, and the
 * partition is a pure function of (trace, shard_cells) from there —
 * identical machines or an explicit `--cells N` reproduce it exactly.
 */
std::uint32_t autoCellCount(trace::TraceView workload,
                            const EngineConfig &config,
                            unsigned shard_threads,
                            const sim::CpuTopology &topology);

/** Wall-clock execution knobs of a sharded run; see the file comment. */
struct ShardExecOptions
{
    /**
     * CPU per cell (one-shot) / team index (stepped): entry [i % size].
     * Empty = run unpinned.  Typically sim::resolvePinCpus(...).
     */
    std::vector<int> pin_cpus;

    /**
     * Target events per lockstep epoch; 0 = one-shot execution (each
     * cell runs to completion in a single pass, the fastest mode for
     * fully independent cells).
     */
    std::uint64_t epoch_events = 0;

    /** Spin budget of the epoch barrier (stepped mode only). */
    unsigned barrier_spin = sim::kDefaultBarrierSpin;
};

/** Deterministic partition of one trial into independent cells. */
struct ShardPlan
{
    struct Cell
    {
        /** First worker (original cluster numbering) of the slice. */
        std::uint32_t first_worker = 0;
        std::uint32_t worker_count = 0;

        /** Functions pinned to this cell, ascending original ids. */
        std::vector<trace::FunctionId> functions;

        /** Total trace requests of those functions (balance weight). */
        std::uint64_t request_weight = 0;

        /** The cell's sub-cluster (worker slice + memory share). */
        cluster::ClusterConfig cluster;
    };

    std::vector<Cell> cells;

    /** Original function id -> owning cell index. */
    std::vector<std::uint32_t> cell_of_function;
};

/**
 * Compute the partition for @p config.shard_cells cells: contiguous
 * worker slices (per-worker capacity identical to the monolithic
 * split), functions assigned longest-processing-time by request count
 * (ties to the lower function id, then the lower cell index).  Pure
 * function of (trace, config) — never of thread count.
 */
ShardPlan buildShardPlan(trace::TraceView workload,
                         const EngineConfig &config);

/** Runs one (possibly partitioned) trial; see the file comment. */
class ShardedEngine
{
  public:
    /**
     * Builds one policy bundle per cell: policy state (CIP rankings,
     * busy-completion views, window estimates) is strictly cell-local,
     * so each cell's engine gets a fresh bundle constructed from the
     * cell's own EngineConfig.
     */
    using PolicyFactory =
        std::function<OrchestrationPolicy(const EngineConfig &)>;

    /**
     * @param workload view of a sealed trace (borrowed; the backing
     *        store must outlive the engine).  config.shard_cells
     *        selects the partition; with 1 the original backing data
     *        is used unpartitioned (zero-copy pass-through).
     */
    ShardedEngine(trace::TraceView workload, EngineConfig config,
                  PolicyFactory policy_factory);

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /**
     * Run the whole trial and return the merged metrics.  @p pool
     * supplies the shard threads (nullptr = run cells serially on the
     * calling thread); the result is bit-identical either way, and for
     * every @p exec (pinning, epoch mode): execution options are pure
     * wall-clock knobs.  Single-shot, like Engine::run().
     *
     * Cells are built inside the loop bodies (first-touch placement);
     * exec.epoch_events > 0 selects the resident-team stepped mode.
     */
    RunMetrics run(sim::ThreadPool *pool = nullptr,
                   const ShardExecOptions &exec = {});

    // ---- stepped execution (lockstep epochs) --------------------------

    /**
     * Arm every cell without executing events.  Single-shot.  Builds
     * any not-yet-built cell on the calling thread (the manual stepping
     * API trades first-touch placement for external control; run()
     * keeps both).
     */
    void begin();

    /**
     * One lockstep epoch: drive every cell up to and including @p until
     * (simulated time), cells in parallel on @p pool.  The epoch
     * boundary is a barrier — all cells reach @p until before the call
     * returns.  @return events executed across cells this epoch.
     */
    std::size_t stepUntil(sim::SimTime until,
                          sim::ThreadPool *pool = nullptr);

    /**
     * Drain the remaining events of every cell (in parallel on
     * @p pool), then merge: metrics fold in canonical cell order via
     * RunMetrics::mergeConcurrent, and per-request outcome logs are
     * scattered back to original trace request indices.  The merged
     * timeline is cell 0's (per-cell dynamics do not overlay).
     */
    RunMetrics finish(sim::ThreadPool *pool = nullptr);

    // ---- live (stream-driven) execution -------------------------------

    /**
     * Arm every cell for stream-driven admission (Engine::beginLive):
     * requests enter via admit(), routed to their owning cell.  The
     * partition (and each cell's RNG substream) is the same pure
     * function of (trace, config) as a trace-driven run, so a live run
     * fed the trace's exact arrival sequence merges bit-identical
     * metrics.  Cells are built serially on the calling thread.
     * Single-shot, mutually exclusive with run()/begin().
     */
    void beginLive();

    /**
     * Admit one request into the owning cell (see Engine::admit): the
     * decision runs synchronously on the calling thread.  Function ids
     * are *original* trace ids; translation to the cell's local id
     * happens here.  @return the request's index within its cell.
     */
    std::uint64_t admit(sim::SimTime when, trace::FunctionId function,
                        sim::SimTime exec_us);

    /** Close the stream of every cell (see Engine::closeStream). */
    void closeStream();

    /** True once begin() ran and every cell's queue is drained. */
    bool drained() const;

    /** Simulation events executed so far, summed over cells. */
    std::uint64_t eventsExecuted() const;

    std::size_t cellCount() const { return cells_.size(); }
    const ShardPlan &plan() const { return plan_; }

    // ---- checkpoint/restore -------------------------------------------

    /**
     * Serialize every cell's engine state (canonical cell order) after
     * begin(); see Engine::saveState.  The partition itself is not
     * saved — it is a pure function of (trace, config) and is rebuilt
     * deterministically on restore.
     */
    void saveState(sim::StateWriter &writer) const;

    /**
     * Restore a checkpoint into a freshly-constructed sharded engine
     * (same workload, config, policy factory): builds every cell, loads
     * each cell's engine state, and leaves the run ready for
     * stepUntil()/finish().  Throws like Engine::loadState.
     */
    void loadState(sim::StateReader &reader);

    /** The per-cell engine (tests / telemetry; cell must be built). */
    const Engine &cellEngine(std::size_t cell) const
    {
        return *cells_.at(cell).engine;
    }

    /**
     * Visit every cell engine in canonical cell order (the `tune` fork
     * point: swap policies / reseed each cell between epochs).  Requires
     * the cells to be built — true after begin() or loadState().  Runs
     * on the calling thread; call at a quiescent point (between
     * stepUntil() epochs).
     */
    void forEachCell(const std::function<void(Engine &, std::uint32_t)> &fn);

  private:
    /**
     * Cache-line aligned so neighbouring cells' hot state (engine
     * pointer, sub-trace headers) never shares a line — shard workers
     * write their own cell's state concurrently.
     */
    struct alignas(64) CellRuntime
    {
        /** Owned sub-trace; unused in the shard_cells == 1 pass-through. */
        trace::Trace sub_trace;
        /** View of sub_trace, or of the original workload (cells == 1). */
        trace::TraceView workload;
        /**
         * Sub-trace request index -> original trace request index
         * (empty in the pass-through, where they coincide).
         */
        std::vector<std::uint64_t> orig_request;
        std::unique_ptr<Engine> engine;
    };

    /** Padded counter slot: one writer per slot, no false sharing. */
    struct alignas(64) PaddedCount
    {
        std::uint64_t value = 0;
    };

    /**
     * Materialize cell @p k (gather + seal its sub-trace, construct its
     * engine) on the *calling* thread — the first-touch half of NUMA
     * placement: run() invokes it from the loop body that will simulate
     * the cell, so the cell's pages are local to that worker's node.
     * Idempotent; never called concurrently for the same k.
     */
    void buildCell(std::size_t k);

    /** Canonical cell-order fold of per-cell results (see finish()). */
    RunMetrics merge(std::vector<RunMetrics> per_cell);

    /** Resident-team lockstep-epoch execution (see the file comment). */
    std::vector<RunMetrics> runStepped(sim::ThreadPool &pool,
                                       const ShardExecOptions &exec);

    trace::TraceView trace_;
    EngineConfig config_;
    PolicyFactory policy_factory_; //!< kept for lazy cell builds
    ShardPlan plan_;
    std::vector<CellRuntime> cells_;
    /** Original function id -> id within its cell's sub-trace. */
    std::vector<trace::FunctionId> local_id_;
    bool ran_ = false;
};

} // namespace cidre::core

#endif // CIDRE_CORE_SHARDED_ENGINE_H
