/**
 * @file
 * Per-run result metrics: everything the paper's figures report.
 */

#ifndef CIDRE_CORE_METRICS_H
#define CIDRE_CORE_METRICS_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/timeseries.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::core {

/**
 * How a request's execution began.
 *
 * Warm        — dispatched immediately into a free warm slot (a "hit");
 * DelayedWarm — waited for a busy warm container (paper's new state);
 * Cold        — waited for a freshly provisioned container (a "miss");
 * Restored    — waited for a CodeCrunch compressed container to inflate.
 */
enum class StartType : std::uint8_t
{
    Warm = 0,
    DelayedWarm,
    Cold,
    Restored,
    kCount,
};

const char *startTypeName(StartType type);

/** Outcome of one request (retained when record_per_request is set). */
struct RequestOutcome
{
    StartType type = StartType::Warm;
    sim::SimTime wait_us = 0; //!< invocation overhead
    sim::SimTime exec_us = 0;

    /**
     * Counterfactual queuing delay at arrival: how long this request
     * would have waited for the earliest busy container of its function
     * to free up, had it queued instead of whatever the policy chose.
     * -1 when the function had no busy container (or no miss occurred).
     * Drives the §2.4 what-if study (Figs. 5/6).
     */
    sim::SimTime counterfactual_queue_us = -1;
};

/**
 * Aggregated results of one simulation run.
 *
 * The engine feeds it; bench binaries read it.  Key derived quantities:
 *  - avgOverheadRatio(): mean of wait/(wait+exec) over requests — the
 *    paper's "average overhead ratio" (Figs. 7, 8, 12, 15, 17, 18, 21);
 *  - cold/warm/delayed ratios (Fig. 12(b,d), Table 2);
 *  - overhead / E2E distributions (Figs. 13, 14, 19, 20);
 *  - average memory usage (Fig. 16).
 */
class RunMetrics
{
  public:
    RunMetrics();

    /** Record a request beginning execution. */
    void recordStart(StartType type, sim::SimTime wait_us,
                     sim::SimTime exec_us);

    /** Note a memory-occupancy change (time-weighted averaging). */
    void noteMemoryUsage(sim::SimTime now, std::int64_t used_mb);

    /** Close the memory integral and record the makespan. */
    void finalize(sim::SimTime now);

    /**
     * Absorb the aggregates of another finalized run (sweep reduction).
     *
     * Deterministic in the operand order: merging the same sequence of
     * runs always yields bit-identical aggregates, which is why the
     * experiment runner reduces trial results strictly in submission
     * order regardless of which thread finished first.  Semantics of
     * the merged run:
     *  - counters, request counts, distributions and outcome logs
     *    accumulate;
     *  - makespan() becomes the *total* simulated time across runs, so
     *    avgMemoryGb() stays the time-weighted mean over all trials;
     *  - peak memory is the maximum across runs;
     *  - the timeline is NOT merged (per-trial dynamics do not overlay
     *    meaningfully); this run's own timeline is kept.
     * Both runs must be finalized; throws std::logic_error otherwise.
     */
    void merge(const RunMetrics &other);

    /**
     * Absorb another finalized run that simulated the SAME time span
     * concurrently (the cells of one sharded trial), rather than a
     * disjoint span appended to this one:
     *  - counters, request counts and distributions accumulate exactly
     *    as in merge();
     *  - makespan() becomes the *maximum* across cells (the trial's
     *    span), and the memory-time integrals sum, so avgMemoryGb() is
     *    the aggregate occupancy of the whole partitioned cluster;
     *  - peak memory is the *sum* of cell peaks — an upper bound, since
     *    cell peaks need not coincide in simulated time;
     *  - per-request outcome logs are NOT concatenated (sub-trace
     *    request indices are meaningless in the merged frame); the
     *    sharded runtime scatters them back to original indices itself;
     *  - the timeline is not merged (same policy as merge()).
     * Deterministic in the operand order, like merge().
     */
    void mergeConcurrent(const RunMetrics &other);

    // --- raw counters (engine-maintained) ------------------------------
    std::uint64_t containers_created = 0;
    /** Total memory of all containers ever provisioned (churn volume). */
    std::uint64_t provisioned_mb = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expirations = 0;     //!< TTL-style reaps
    std::uint64_t compressions = 0;
    std::uint64_t prewarms = 0;
    std::uint64_t wasted_cold_starts = 0; //!< evicted without ever serving
    std::uint64_t deferred_provisions = 0;
    std::uint64_t cancelled_provisions = 0;
    /** Requests whose wait exceeded EngineConfig::slo_us (if set). */
    std::uint64_t slo_violations = 0;

    // --- per-type request counts ---------------------------------------
    std::uint64_t count(StartType type) const;
    std::uint64_t total() const;

    double ratio(StartType type) const;
    double coldRatio() const { return ratio(StartType::Cold); }
    double delayedRatio() const { return ratio(StartType::DelayedWarm); }
    /** Warm + Restored (restores are warm starts with a small warmup). */
    double warmRatio() const;

    /** Mean per-request wait/(wait+exec), as a percentage. */
    double avgOverheadRatioPct() const;

    /** Mean invocation overhead in milliseconds. */
    double avgOverheadMs() const;

    /** Mean wait of one start type, in milliseconds. */
    double avgWaitMs(StartType type) const;

    /** Invocation overhead distribution (microseconds). */
    const stats::Histogram &overheadHistogram() const { return overhead_us_; }

    /** End-to-end service time distribution (microseconds). */
    const stats::Histogram &e2eHistogram() const { return e2e_us_; }

    /** Time-averaged occupied memory, in GB. */
    double avgMemoryGb() const;
    /** Peak occupied memory, in GB. */
    double peakMemoryGb() const;

    sim::SimTime makespan() const { return makespan_; }

    /** Per-request log; empty unless record_per_request was enabled. */
    std::vector<RequestOutcome> outcomes;

    /**
     * Run timeline (populated when record_timeline is enabled): the
     * dynamics the aggregates hide — memory spikes, cold-start storms,
     * channel backlogs.
     */
    struct Timeline
    {
        /** Occupied memory (MB), sampled on every change. */
        stats::TimeSeries memory_mb{sim::sec(10),
                                    stats::BucketCombine::Max};
        /** Cold starts per bucket. */
        stats::TimeSeries cold_starts{sim::sec(10),
                                      stats::BucketCombine::Sum};
        /** Delayed warm starts per bucket. */
        stats::TimeSeries delayed_warms{sim::sec(10),
                                        stats::BucketCombine::Sum};
        /** Containers provisioned per bucket. */
        stats::TimeSeries provisions{sim::sec(10),
                                     stats::BucketCombine::Sum};
    };
    Timeline timeline;

    /**
     * Checkpoint/restore of the full accumulator state (counters,
     * distributions, memory integral, outcome log and timeline).
     */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    /** Shared accumulation of merge()/mergeConcurrent(). */
    void mergeAggregates(const RunMetrics &other);

    std::array<std::uint64_t,
               static_cast<std::size_t>(StartType::kCount)> counts_{};
    std::array<stats::OnlineSummary,
               static_cast<std::size_t>(StartType::kCount)> wait_by_type_;
    stats::OnlineSummary overhead_ratio_;
    stats::OnlineSummary overhead_all_;
    stats::Histogram overhead_us_;
    stats::Histogram e2e_us_;

    // Time-weighted memory integral.
    double mb_time_integral_ = 0.0;
    std::int64_t current_used_mb_ = 0;
    std::int64_t peak_used_mb_ = 0;
    sim::SimTime last_memory_change_ = 0;
    sim::SimTime makespan_ = 0;
    bool finalized_ = false;
};

} // namespace cidre::core

#endif // CIDRE_CORE_METRICS_H
