#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace cidre::sim {

EventQueue::EventId
EventQueue::schedule(SimTime when, Callback cb)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling into the past");
    if (!cb)
        throw std::invalid_argument("EventQueue: empty callback");
    const EventId id = next_id_++;
    heap_.push(Entry{when, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
}

EventQueue::EventId
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    callbacks_.erase(id);
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() && !callbacks_.count(heap_.top().id))
        heap_.pop();
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap_.empty();
}

SimTime
EventQueue::peekTime() const
{
    skipCancelled();
    return heap_.empty() ? kTimeInfinity : heap_.top().when;
}

bool
EventQueue::runNext()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    const Entry entry = heap_.top();
    heap_.pop();
    auto node = callbacks_.extract(entry.id);
    now_ = entry.when;
    ++executed_;
    node.mapped()(now_);
    return true;
}

std::size_t
EventQueue::runUntil(SimTime deadline)
{
    std::size_t count = 0;
    while (peekTime() <= deadline && runNext())
        ++count;
    if (now_ < deadline)
        now_ = deadline;
    return count;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t count = 0;
    while (count < max_events && runNext())
        ++count;
    return count;
}

} // namespace cidre::sim
