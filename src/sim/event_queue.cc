#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/serialize.h"

namespace cidre::sim {

std::uint32_t
EventQueue::acquireSlot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t index = free_head_;
        free_head_ = slots_[index].next_free;
        slots_[index].next_free = kNoSlot;
        return index;
    }
    if (slots_.size() > kSlotMask)
        throw std::length_error("EventQueue: more than 2^24 pending events");
    const auto index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    return index;
}

void
EventQueue::releaseSlot(std::uint32_t index) noexcept
{
    Slot &slot = slots_[index];
    slot.callback.reset();
    slot.armed_key = 0; // invalidates outstanding ids and heap entries
    slot.next_free = free_head_;
    slot.tag = EventTag{};
    free_head_ = index;
}

void
EventQueue::siftUp(std::size_t index)
{
    HeapEntry entry = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / 4;
        if (!earlier(entry, heap_[parent]))
            break;
        heap_[index] = heap_[parent];
        index = parent;
    }
    heap_[index] = entry;
}

void
EventQueue::siftDown(std::size_t index)
{
    const std::size_t size = heap_.size();
    HeapEntry entry = heap_[index];
    for (;;) {
        const std::size_t first = index * 4 + 1;
        if (first >= size)
            break;
        const std::size_t last = std::min(first + 4, size);
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child) {
            if (earlier(heap_[child], heap_[best]))
                best = child;
        }
        if (!earlier(heap_[best], entry))
            break;
        heap_[index] = heap_[best];
        index = best;
    }
    heap_[index] = entry;
}

void
EventQueue::popTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
}

std::uint32_t
EventQueue::beginSchedule(SimTime when)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling into the past");
    if (next_seq_ >> (64 - kSlotBits) != 0)
        throw std::length_error("EventQueue: sequence space exhausted");
    return acquireSlot();
}

EventQueue::EventId
EventQueue::finishSchedule(SimTime when, std::uint32_t slot)
{
    return finishScheduleReserved(when, slot, next_seq_++);
}

EventQueue::EventId
EventQueue::finishScheduleReserved(SimTime when, std::uint32_t slot,
                                   std::uint64_t seq)
{
    const std::uint64_t key = (seq << kSlotBits) | slot;
    slots_[slot].armed_key = key;
    heap_.push_back(HeapEntry{when, key});
    siftUp(heap_.size() - 1);
    return key;
}

std::uint64_t
EventQueue::reserveSeq()
{
    if (next_seq_ >> (64 - kSlotBits) != 0)
        throw std::length_error("EventQueue: sequence space exhausted");
    return next_seq_++;
}

EventQueue::EventId
EventQueue::schedule(SimTime when, Callback cb)
{
    if (!cb)
        throw std::invalid_argument("EventQueue: empty callback");
    const std::uint32_t slot = beginSchedule(when);
    slots_[slot].callback = std::move(cb);
    return finishSchedule(when, slot);
}

EventQueue::EventId
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return;
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (slot >= slots_.size() || slots_[slot].armed_key != id)
        return; // already ran, already cancelled, or never existed
    releaseSlot(slot);
    ++cancelled_;
    // Cancelled-event debt: the dead heap entries are usually cheap to
    // carry (they pop out in time order), but a cancel-heavy workload
    // could otherwise grow the heap without bound.  Sweep once they
    // outnumber the live entries.
    if (cancelled_ * 2 > heap_.size())
        compact();
}

void
EventQueue::compact()
{
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const HeapEntry &entry) {
                                   return dead(entry);
                               }),
                heap_.end());
    cancelled_ = 0;
    if (heap_.size() > 1) {
        // Bottom-up heapify: every index that can have a child.
        for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;)
            siftDown(i);
    }
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && dead(heap_.front())) {
        // popTop on the mutable members; const because empty()/peekTime()
        // must be able to discard dead heads.
        const_cast<EventQueue *>(this)->popTop();
        --cancelled_;
    }
}

bool
EventQueue::empty() const
{
    skipDead();
    return heap_.empty();
}

SimTime
EventQueue::peekTime() const
{
    skipDead();
    return heap_.empty() ? kTimeInfinity : heap_.front().when;
}

bool
EventQueue::runNext()
{
    skipDead();
    if (heap_.empty())
        return false;
    const HeapEntry top = heap_.front();
    popTop();
    const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
    // Move the callback out and release the slot *before* invoking: the
    // callback may schedule new events (reusing this very slot) or grow
    // the pool, exactly like the old extract-then-invoke contract.
    EventCallback callback = std::move(slots_[slot].callback);
    releaseSlot(slot);
    now_ = top.when;
    last_event_ = top.when;
    ++executed_;
    callback(now_);
    return true;
}

std::size_t
EventQueue::runTo(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (id == 0 || slot >= slots_.size() || slots_[slot].armed_key != id)
        throw std::logic_error("EventQueue: runTo target is not pending");
    std::size_t count = 0;
    for (;;) {
        skipDead();
        // The target is pending, so the heap cannot drain before we
        // reach it; its key bounds everything we pop along the way.
        const bool target = heap_.front().key == id;
        runNext();
        ++count;
        if (target)
            return count;
    }
}

std::size_t
EventQueue::runUntil(SimTime deadline)
{
    std::size_t count = 0;
    while (peekTime() <= deadline && runNext())
        ++count;
    if (now_ < deadline)
        now_ = deadline;
    return count;
}

void
EventQueue::saveState(StateWriter &writer) const
{
    writer.put(now_);
    writer.put(last_event_);
    writer.put(next_seq_);
    writer.put(executed_);
    writer.put(free_head_);
    writer.put<std::uint64_t>(cancelled_);
    writer.putVector(heap_);
    writer.put<std::uint64_t>(slots_.size());
    for (const Slot &slot : slots_) {
        if (slot.armed_key != 0 && slot.tag.kind == 0)
            throw std::logic_error(
                "EventQueue: cannot checkpoint an untagged pending event");
        writer.put(slot.armed_key);
        writer.put(slot.next_free);
        writer.put(slot.tag);
    }
}

void
EventQueue::loadState(StateReader &reader, const EventFactory &factory)
{
    now_ = reader.get<SimTime>();
    last_event_ = reader.get<SimTime>();
    next_seq_ = reader.get<std::uint64_t>();
    executed_ = reader.get<std::uint64_t>();
    free_head_ = reader.get<std::uint32_t>();
    cancelled_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
    heap_ = reader.getVector<HeapEntry>();
    const auto slot_count = reader.get<std::uint64_t>();
    slots_.clear();
    slots_.resize(static_cast<std::size_t>(slot_count));
    for (Slot &slot : slots_) {
        slot.armed_key = reader.get<std::uint64_t>();
        slot.next_free = reader.get<std::uint32_t>();
        slot.tag = reader.get<EventTag>();
        if (slot.armed_key != 0) {
            slot.callback = factory(slot.tag);
            if (!slot.callback)
                throw std::runtime_error(
                    "EventQueue: no callback for checkpointed event kind " +
                    std::to_string(slot.tag.kind));
        }
    }
    for (const HeapEntry &entry : heap_) {
        if ((entry.key & kSlotMask) >= slots_.size())
            throw std::runtime_error(
                "EventQueue: checkpointed heap references invalid slot");
    }
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t count = 0;
    while (count < max_events && runNext())
        ++count;
    return count;
}

} // namespace cidre::sim
