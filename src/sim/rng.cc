#include "sim/rng.h"

#include <cassert>

namespace cidre::sim {

namespace {

/** splitmix64 step, used only to expand the seed into full state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace cidre::sim
