#include "sim/rng.h"

#include <cassert>

namespace cidre::sim {

std::uint64_t
splitmix64(std::uint64_t value)
{
    value += 0x9e3779b97f4a7c15ull;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
    return value ^ (value >> 31);
}

std::uint64_t
substreamSeed(std::uint64_t base_seed, std::uint64_t index)
{
    // index + 1 keeps substream 0 distinct from a plain mix of the base
    // seed; the golden-ratio multiplier spreads consecutive indices far
    // apart before the second avalanche round.
    return splitmix64(splitmix64(base_seed) ^
                      ((index + 1) * 0x9e3779b97f4a7c15ull));
}

namespace {

/** splitmix64 counter step, used to expand the seed into full state. */
std::uint64_t
splitmixStep(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    return splitmix64(x - 0x9e3779b97f4a7c15ull);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmixStep(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace cidre::sim
