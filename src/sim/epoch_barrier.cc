#include "sim/epoch_barrier.h"

#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cidre::sim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

} // namespace

EpochBarrier::EpochBarrier(unsigned parties, unsigned spin_iterations)
    : parties_(parties), spin_(spin_iterations)
{
    if (parties == 0)
        throw std::invalid_argument("EpochBarrier: parties must be >= 1");
}

bool
EpochBarrier::arriveAndWait(Waiter &waiter)
{
    const bool my_sense = !waiter.sense;
    waiter.sense = my_sense;

    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // Last arrival: reset for the next crossing, then flip the
        // sense.  The count reset happens strictly before the flip
        // releases the waiters, so no party of the *next* crossing can
        // observe a stale count.  The flip is published under the park
        // mutex so a parked waiter cannot miss it between its predicate
        // check and its wait (the classic lost-wakeup pairing).
        arrived_.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            sense_.store(my_sense, std::memory_order_release);
        }
        wake_.notify_all();
        return true;
    }

    for (unsigned i = 0; i < spin_; ++i) {
        if (sense_.load(std::memory_order_acquire) == my_sense)
            return false;
        cpuRelax();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] {
        return sense_.load(std::memory_order_acquire) == my_sense;
    });
    return false;
}

} // namespace cidre::sim
