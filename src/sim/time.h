/**
 * @file
 * Simulated-time primitives shared by every module.
 *
 * All simulated timestamps and durations are expressed as signed 64-bit
 * microsecond counts (SimTime).  Microseconds give enough resolution for
 * the sub-millisecond queuing delays observed in the Alibaba FC trace
 * (paper Fig. 6) while keeping 292k years of range, so overflow is never
 * a practical concern.
 */

#ifndef CIDRE_SIM_TIME_H
#define CIDRE_SIM_TIME_H

#include <cstdint>
#include <limits>

namespace cidre::sim {

/** Simulated timestamp or duration in microseconds. */
using SimTime = std::int64_t;

/** A timestamp that compares later than every real event. */
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::max();

/** Convert whole microseconds to SimTime (identity; documents intent). */
constexpr SimTime usec(std::int64_t n) { return n; }

/** Convert whole milliseconds to SimTime. */
constexpr SimTime msec(std::int64_t n) { return n * 1000; }

/** Convert whole seconds to SimTime. */
constexpr SimTime sec(std::int64_t n) { return n * 1000 * 1000; }

/** Convert whole minutes to SimTime. */
constexpr SimTime minutes(std::int64_t n) { return sec(n * 60); }

/** Convert a SimTime duration to fractional milliseconds. */
constexpr double toMs(SimTime t) { return static_cast<double>(t) / 1e3; }

/** Convert a SimTime duration to fractional seconds. */
constexpr double toSec(SimTime t) { return static_cast<double>(t) / 1e6; }

/** Convert a SimTime duration to fractional minutes. */
constexpr double toMin(SimTime t) { return static_cast<double>(t) / 60e6; }

/** Convert fractional seconds to the nearest SimTime. */
constexpr SimTime fromSec(double s)
{
    return static_cast<SimTime>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

/** Convert fractional milliseconds to the nearest SimTime. */
constexpr SimTime fromMs(double ms)
{
    return static_cast<SimTime>(ms * 1e3 + (ms >= 0 ? 0.5 : -0.5));
}

} // namespace cidre::sim

#endif // CIDRE_SIM_TIME_H
