/**
 * @file
 * Tiny binary state serialization used by engine checkpoint/restore.
 *
 * StateWriter appends trivially-copyable values to a growable byte
 * buffer; StateReader plays them back with strict bounds checking
 * (every short read throws, so a truncated checkpoint can never be
 * half-applied).  The encoding is raw little-endian PODs with u64
 * length prefixes for vectors/strings — the checkpoint container
 * (core/checkpoint) adds versioning, checksums and a config
 * fingerprint on top, so this layer stays dumb and fast.
 */

#ifndef CIDRE_SIM_SERIALIZE_H
#define CIDRE_SIM_SERIALIZE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace cidre::sim {

/** Appends PODs to a byte buffer. */
class StateWriter
{
  public:
    template <typename T> void put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "StateWriter::put requires a POD type");
        const auto *raw = reinterpret_cast<const std::byte *>(&value);
        buffer_.insert(buffer_.end(), raw, raw + sizeof(T));
    }

    void putBytes(const void *data, std::size_t size)
    {
        const auto *raw = static_cast<const std::byte *>(data);
        buffer_.insert(buffer_.end(), raw, raw + size);
    }

    /** u64 length prefix + raw element bytes. */
    template <typename T> void putVector(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "StateWriter::putVector requires POD elements");
        put<std::uint64_t>(values.size());
        if (!values.empty())
            putBytes(values.data(), values.size() * sizeof(T));
    }

    /** vector<bool> has no contiguous storage; store one byte each. */
    void putBoolVector(const std::vector<bool> &values)
    {
        put<std::uint64_t>(values.size());
        for (const bool v : values)
            put<std::uint8_t>(v ? 1 : 0);
    }

    void putString(const std::string &value)
    {
        put<std::uint64_t>(value.size());
        putBytes(value.data(), value.size());
    }

    const std::vector<std::byte> &bytes() const { return buffer_; }
    std::vector<std::byte> release() { return std::move(buffer_); }

  private:
    std::vector<std::byte> buffer_;
};

/** Bounds-checked playback of a StateWriter buffer. */
class StateReader
{
  public:
    StateReader(const std::byte *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<std::byte> &buffer)
        : StateReader(buffer.data(), buffer.size())
    {
    }

    template <typename T> T get()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "StateReader::get requires a POD type");
        T value;
        getBytes(&value, sizeof(T));
        return value;
    }

    void getBytes(void *out, std::size_t size)
    {
        if (size > size_ - pos_ || pos_ > size_)
            throw std::runtime_error(
                "StateReader: truncated checkpoint payload");
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }

    template <typename T> std::vector<T> getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "StateReader::getVector requires POD elements");
        const std::uint64_t count = get<std::uint64_t>();
        checkCount(count, sizeof(T));
        std::vector<T> values(static_cast<std::size_t>(count));
        if (count > 0)
            getBytes(values.data(),
                     static_cast<std::size_t>(count) * sizeof(T));
        return values;
    }

    std::vector<bool> getBoolVector()
    {
        const std::uint64_t count = get<std::uint64_t>();
        checkCount(count, 1);
        std::vector<bool> values(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i)
            values[i] = get<std::uint8_t>() != 0;
        return values;
    }

    std::string getString()
    {
        const std::uint64_t count = get<std::uint64_t>();
        checkCount(count, 1);
        std::string value(static_cast<std::size_t>(count), '\0');
        if (count > 0)
            getBytes(value.data(), static_cast<std::size_t>(count));
        return value;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    /** A hostile length prefix must not drive a huge allocation. */
    void checkCount(std::uint64_t count, std::size_t elem_size) const
    {
        if (count > (size_ - pos_) / elem_size)
            throw std::runtime_error(
                "StateReader: truncated checkpoint payload");
    }

    const std::byte *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace cidre::sim

#endif // CIDRE_SIM_SERIALIZE_H
