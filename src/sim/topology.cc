#include "sim/topology.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace cidre::sim {

namespace {

/** First line of @p path, or empty when unreadable. */
std::string
readLine(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::string line;
    std::getline(in, line);
    return line;
}

/** Integer file content, or @p fallback when missing/malformed. */
int
readInt(const std::string &path, int fallback)
{
    const std::string line = readLine(path);
    int value = 0;
    const auto *begin = line.data();
    const auto *end = begin + line.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{})
        return fallback;
    return value;
}

/** Enumerate "<dir>/<prefix>N" entries, ascending N. */
std::vector<int>
numberedEntries(const std::string &dir, const std::string &prefix)
{
    namespace fs = std::filesystem;
    std::vector<int> ids;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) != 0)
            continue;
        const std::string digits = name.substr(prefix.size());
        if (digits.empty() ||
            !std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
                return std::isdigit(c);
            }))
            continue;
        ids.push_back(std::stoi(digits));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

} // namespace

PinMode
parsePinMode(const std::string &text)
{
    if (text == "auto")
        return PinMode::Auto;
    if (text == "off")
        return PinMode::Off;
    if (text == "physical")
        return PinMode::Physical;
    throw std::invalid_argument("pin mode must be auto, off or physical"
                                " (got '" + text + "')");
}

const char *
pinModeName(PinMode mode)
{
    switch (mode) {
    case PinMode::Off:
        return "off";
    case PinMode::Auto:
        return "auto";
    case PinMode::Physical:
        return "physical";
    }
    return "?";
}

std::vector<int>
parseCpuList(const std::string &text)
{
    std::vector<int> cpus;
    std::string token;
    std::istringstream stream(text);
    while (std::getline(stream, token, ',')) {
        // Trim whitespace (the kernel terminates the list with '\n').
        const auto first = token.find_first_not_of(" \t\n\r");
        if (first == std::string::npos)
            continue;
        const auto last = token.find_last_not_of(" \t\n\r");
        token = token.substr(first, last - first + 1);

        int lo = 0;
        int hi = 0;
        const auto dash = token.find('-');
        const auto parse = [](const std::string &s, int &out) {
            const auto r =
                std::from_chars(s.data(), s.data() + s.size(), out);
            return r.ec == std::errc{} &&
                   r.ptr == s.data() + s.size() && out >= 0;
        };
        if (dash == std::string::npos) {
            if (!parse(token, lo))
                return {};
            hi = lo;
        } else {
            if (!parse(token.substr(0, dash), lo) ||
                !parse(token.substr(dash + 1), hi) || hi < lo)
                return {};
        }
        for (int cpu = lo; cpu <= hi; ++cpu)
            cpus.push_back(cpu);
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

unsigned
CpuTopology::physicalCores() const
{
    std::set<std::pair<int, int>> cores;
    for (const auto &cpu : cpus)
        cores.emplace(cpu.package, cpu.core);
    return static_cast<unsigned>(cores.size());
}

unsigned
CpuTopology::packages() const
{
    std::set<int> ids;
    for (const auto &cpu : cpus)
        ids.insert(cpu.package);
    return static_cast<unsigned>(ids.size());
}

unsigned
CpuTopology::numaNodes() const
{
    std::set<int> ids;
    for (const auto &cpu : cpus)
        ids.insert(cpu.node);
    return static_cast<unsigned>(ids.size());
}

bool
CpuTopology::smt() const
{
    for (const auto &cpu : cpus)
        if (cpu.smt_sibling)
            return true;
    return false;
}

std::vector<int>
CpuTopology::pinOrder() const
{
    // Sort (node, package, core, id); primaries of each core before any
    // sibling.  This fills physical cores NUMA node by NUMA node and
    // only then doubles up on SMT — the order that keeps a growing team
    // on distinct execution resources for as long as possible.
    std::vector<const Cpu *> order;
    order.reserve(cpus.size());
    for (const auto &cpu : cpus)
        order.push_back(&cpu);
    std::sort(order.begin(), order.end(),
              [](const Cpu *a, const Cpu *b) {
                  if (a->smt_sibling != b->smt_sibling)
                      return !a->smt_sibling;
                  if (a->node != b->node)
                      return a->node < b->node;
                  if (a->package != b->package)
                      return a->package < b->package;
                  if (a->core != b->core)
                      return a->core < b->core;
                  return a->id < b->id;
              });
    std::vector<int> ids;
    ids.reserve(order.size());
    for (const auto *cpu : order)
        ids.push_back(cpu->id);
    return ids;
}

CpuTopology
CpuTopology::detect()
{
    return fromSysfs("/sys/devices/system");
}

CpuTopology
CpuTopology::fromSysfs(const std::string &root)
{
    CpuTopology topology;
    const std::string cpu_dir = root + "/cpu";

    // Online CPU set: the kernel's list, else every cpuN directory.
    std::vector<int> online = parseCpuList(readLine(cpu_dir + "/online"));
    if (online.empty())
        online = numberedEntries(cpu_dir, "cpu");
    if (online.empty())
        online = {0}; // synthetic single CPU: never return an empty table

    // NUMA node of each CPU from the node tree (absent -> node 0).
    std::map<int, int> node_of;
    for (const int node : numberedEntries(root + "/node", "node")) {
        const auto cpus_of_node = parseCpuList(
            readLine(root + "/node/node" + std::to_string(node) +
                     "/cpulist"));
        for (const int cpu : cpus_of_node)
            node_of[cpu] = node;
    }

    topology.cpus.reserve(online.size());
    for (const int id : online) {
        Cpu cpu;
        cpu.id = id;
        const std::string topo =
            cpu_dir + "/cpu" + std::to_string(id) + "/topology";
        // Fallbacks make every CPU its own physical core on package 0,
        // which is the conservative reading (no SMT assumed).
        cpu.core = readInt(topo + "/core_id", id);
        cpu.package = readInt(topo + "/physical_package_id", 0);
        const auto node_it = node_of.find(id);
        cpu.node = node_it == node_of.end() ? 0 : node_it->second;
        topology.cpus.push_back(cpu);
    }

    // The lowest-numbered CPU of each (package, core) is the primary;
    // the rest are SMT siblings.  Online order is ascending, so the
    // first occurrence wins.
    std::set<std::pair<int, int>> seen;
    for (auto &cpu : topology.cpus)
        cpu.smt_sibling = !seen.emplace(cpu.package, cpu.core).second;

    return topology;
}

bool
pinCurrentThread(int cpu)
{
#if defined(__linux__)
    if (cpu < 0 || cpu >= CPU_SETSIZE)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

ScopedAffinity::ScopedAffinity(int cpu)
{
    if (cpu < 0)
        return;
#if defined(__linux__)
    static_assert(sizeof(saved_mask_) >= sizeof(cpu_set_t));
    cpu_set_t previous;
    CPU_ZERO(&previous);
    if (::sched_getaffinity(0, sizeof(previous), &previous) == 0) {
        std::copy_n(reinterpret_cast<const unsigned char *>(&previous),
                    sizeof(previous), saved_mask_);
        saved_ = true;
    }
    pinned_ = pinCurrentThread(cpu);
#endif
}

ScopedAffinity::~ScopedAffinity()
{
#if defined(__linux__)
    if (pinned_ && saved_) {
        cpu_set_t previous;
        std::copy_n(saved_mask_, sizeof(previous),
                    reinterpret_cast<unsigned char *>(&previous));
        ::sched_setaffinity(0, sizeof(previous), &previous);
    }
#endif
}

std::vector<int>
resolvePinCpus(PinMode mode, const CpuTopology &topology, unsigned width)
{
    if (mode == PinMode::Off || width <= 1)
        return {};
    if (mode == PinMode::Auto && topology.physicalCores() < width)
        return {};
    return topology.pinOrder();
}

} // namespace cidre::sim
