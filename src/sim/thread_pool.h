/**
 * @file
 * A reusable fixed-size thread pool for deterministic fan-out.
 *
 * Both parallel layers of the harness — trial-level fan-out in
 * exp::ExperimentRunner and intra-trial shard execution in
 * core::ShardedEngine — need the same primitive: run body(0..count-1)
 * across a fixed set of threads such that a deterministic body keyed on
 * its index yields identical results for any thread count.  The pool
 * provides exactly that, with two properties the transient
 * thread-per-call design it replaces lacked:
 *
 *  - **Threads are hoisted.**  Workers are spawned once and reused
 *    across parallelFor() calls, so a sweep that dispatches thousands
 *    of trials (or a sharded trial stepped in epochs) does not pay a
 *    spawn/join round trip per call.
 *  - **The caller participates.**  parallelFor() claims indices on the
 *    calling thread too, so a pool constructed with N threads applies
 *    exactly N threads of compute, and a pool is usable (serially) even
 *    with zero helper threads.
 *
 * Scheduling is a single atomic claim counter — no work stealing, no
 * per-thread queues — copied from the discipline exp::parallelFor
 * established: claim order may vary between runs; results, landing at
 * their index, never do.
 *
 * ## Wake-up latency (spin-then-park)
 *
 * An epoch-stepped sharded trial dispatches thousands of short loops,
 * and a helper that parked on the condvar between epochs pays a futex
 * wake plus scheduler latency before it can claim its first index —
 * easily longer than the epoch itself.  Helpers therefore spin on the
 * (atomic) generation counter for a bounded number of iterations after
 * finishing a loop before parking, and the caller's completion wait
 * spins the same way before blocking.  The budget is a constructor
 * knob (ThreadPoolOptions::spin_iterations): 0 restores the pure
 * condvar behaviour, the default covers inter-epoch gaps of a few
 * microseconds.  Spinning only ever costs the idle helper's own CPU
 * time; correctness is untouched (the park path re-checks the
 * predicate under the mutex that publishes it).
 */

#ifndef CIDRE_SIM_THREAD_POOL_H
#define CIDRE_SIM_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cidre::sim {

/** Default spin budget before a helper/caller parks (iterations). */
inline constexpr unsigned kDefaultPoolSpin = 1u << 12;

/** Construction-time knobs of a ThreadPool. */
struct ThreadPoolOptions
{
    /** Total threads applied by parallelFor(), caller included. */
    unsigned threads = 1;

    /** Polls of the wake predicate before parking; 0 = park at once. */
    unsigned spin_iterations = kDefaultPoolSpin;

    /**
     * Default CPU affinity of the helper threads: helper slot s pins
     * itself to pin_cpus[s % size] at spawn (sim::pinCurrentThread
     * semantics — failure is a silent no-op).  Empty = inherit.  The
     * calling thread is never pinned by the pool; bodies that need an
     * exact per-index placement use sim::ScopedAffinity themselves.
     */
    std::vector<int> pin_cpus;
};

/** Fixed set of worker threads executing indexed parallel loops. */
class ThreadPool
{
  public:
    /**
     * A loop body: receives the claimed index plus the stable slot of
     * the executing thread (0 = the calling thread, 1..threads()-1 =
     * helpers).  The slot exists so bodies can select per-slot scratch
     * (e.g. nested per-slot pools); deterministic bodies must not let
     * it influence results.
     */
    using Body = std::function<void(std::size_t index, unsigned slot)>;

    /**
     * @param threads total threads applied by parallelFor(), including
     *        the calling thread; 0 and 1 both mean "no helpers".
     */
    explicit ThreadPool(unsigned threads)
        : ThreadPool(ThreadPoolOptions{threads, kDefaultPoolSpin, {}})
    {
    }

    /** Full-knob constructor (spin budget, helper affinity). */
    explicit ThreadPool(const ThreadPoolOptions &options);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Joins the helper threads (after draining any active loop). */
    ~ThreadPool();

    /** Total threads applied to a loop (helpers + the caller). */
    unsigned threadCount() const { return helpers_ + 1; }

    /** Configured spin budget (tests, telemetry). */
    unsigned spinIterations() const { return spin_; }

    /** Helpers whose spawn-time pin succeeded (telemetry only). */
    unsigned pinnedHelpers() const
    {
        return pinned_helpers_.load(std::memory_order_relaxed);
    }

    /**
     * True while a parallelFor is active on this pool.  A caller about
     * to dispatch a loop whose bodies *synchronize with each other*
     * (resident teams) must check this: a nested dispatch runs
     * serially, which deadlocks inter-body barriers.
     */
    bool busy() const { return in_loop_.load(std::memory_order_acquire); }

    /**
     * Run body(0) ... body(count-1), returning when all ran.  The
     * calling thread participates; helper threads assist.  If bodies
     * throw, the exception of the smallest failing index is rethrown
     * after the loop drains.
     *
     * Not reentrant: a nested call from inside a body (same pool) runs
     * its loop serially on the calling thread rather than deadlocking.
     */
    void parallelFor(std::size_t count, const Body &body);

    /** Convenience overload for bodies that ignore the thread slot. */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

  private:
    struct Loop
    {
        const Body *body = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::vector<std::exception_ptr> *errors = nullptr;
    };

    void workerMain(unsigned slot, int pin_cpu);
    /** Claim-and-run until the loop is exhausted. */
    static void drain(Loop &loop, unsigned slot);

    unsigned helpers_ = 0;
    unsigned spin_ = kDefaultPoolSpin;
    std::vector<std::thread> threads_;
    std::atomic<unsigned> pinned_helpers_{0};

    std::mutex mutex_;
    std::condition_variable work_cv_;   //!< helpers wait for a loop
    std::condition_variable done_cv_;   //!< the caller waits for drain
    Loop *active_ = nullptr;            //!< published under mutex_
    /**
     * Bumped (under mutex_) per published loop.  Atomic so idle helpers
     * can spin on it outside the mutex before parking; the mutex-held
     * store still pairs with the condvar predicate for the park path.
     */
    std::atomic<std::uint64_t> generation_{0};
    /**
     * Helpers currently holding a pointer into the active loop.  A
     * helper checks in (under mutex_) when it picks up active_ and
     * checks out after drain() returns; the caller's completion wait
     * requires participants_ == 0 so the stack-allocated Loop cannot be
     * destroyed while a helper can still dereference it.  Atomic so the
     * caller's pre-park spin can poll it outside the mutex.
     */
    std::atomic<unsigned> participants_{0};
    std::atomic<bool> shutdown_{false};
    /** True while a parallelFor is running (reentrancy detection). */
    std::atomic<bool> in_loop_{false};
};

} // namespace cidre::sim

#endif // CIDRE_SIM_THREAD_POOL_H
