/**
 * @file
 * Deterministic random distributions used by the trace generators.
 *
 * Every sampler is implemented directly on top of sim::Rng so that a
 * given seed produces bit-identical traces on every platform (see the
 * rationale in sim/rng.h).  The set covers what the workload models in
 * src/trace need: exponential inter-arrival gaps, lognormal execution
 * times and memory footprints, bounded Pareto burst sizes, Zipf function
 * popularity, and Poisson counts.
 */

#ifndef CIDRE_SIM_DISTRIBUTIONS_H
#define CIDRE_SIM_DISTRIBUTIONS_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace cidre::sim {

/** Exponential variate with the given rate (mean 1/rate); rate > 0. */
double sampleExponential(Rng &rng, double rate);

/** Standard normal variate (Box-Muller, one value per call). */
double sampleNormal(Rng &rng, double mean = 0.0, double stddev = 1.0);

/**
 * Lognormal variate parameterized by the *median* and the shape sigma.
 *
 * median = exp(mu).  This parameterization matches how the paper reports
 * execution-time statistics (medians and relative variance).
 */
double sampleLognormalMedian(Rng &rng, double median, double sigma);

/**
 * Bounded Pareto variate on [lo, hi] with tail index alpha > 0.
 *
 * Used for burst sizes: most bursts are small but the tail reaches the
 * thousands of concurrent requests reported in paper Fig. 3.
 */
double sampleBoundedPareto(Rng &rng, double alpha, double lo, double hi);

/** Exact mean of the bounded Pareto distribution on [lo, hi]. */
double boundedParetoMean(double alpha, double lo, double hi);

/** Poisson count with the given mean (inversion for small, PTRS for large). */
std::uint64_t samplePoisson(Rng &rng, double mean);

/**
 * Zipf sampler over ranks 1..n with exponent s.
 *
 * Precomputes the CDF once (O(n)) and samples in O(log n); n is at most a
 * few hundred functions, so the table is tiny.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double exponent);

    /** Draw a rank in [0, n). Rank 0 is the most popular. */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double massOf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Empirical sampler over an explicit (value, weight) table.
 *
 * Used to reproduce published CDFs (e.g. the cold-start/exec-time ratio
 * distribution of paper Fig. 2) from a handful of anchor points.
 */
class DiscreteSampler
{
  public:
    /** Weights need not be normalized; they must be non-negative. */
    DiscreteSampler(std::vector<double> values, std::vector<double> weights);

    double sample(Rng &rng) const;

    std::size_t size() const { return values_.size(); }

  private:
    std::vector<double> values_;
    std::vector<double> cdf_;
};

} // namespace cidre::sim

#endif // CIDRE_SIM_DISTRIBUTIONS_H
