/**
 * @file
 * CPU topology detection and thread affinity for shard workers.
 *
 * The sharded engine's wall-clock payoff depends on where its worker
 * threads land: two shard workers sharing one physical core via SMT
 * fight over execution ports, and a worker whose cell state lives on a
 * remote NUMA node pays cross-socket latency on every container and
 * metrics touch.  This module gives the execution layer the facts it
 * needs to place threads deliberately:
 *
 *  - CpuTopology reads the kernel's sysfs description
 *    (/sys/devices/system/cpu + /sys/devices/system/node) into a flat
 *    per-CPU table: physical core, package (socket), NUMA node, and
 *    whether the CPU is a secondary SMT sibling.  The reader is rooted
 *    at a path so tests can parse fixture trees, and degrades
 *    gracefully: missing files collapse to "every CPU its own core,
 *    one node" rather than failing.
 *
 *  - pinOrder() linearizes the table into the order shard workers
 *    should be pinned: one CPU per *physical* core first (ascending
 *    NUMA node, then package, then core), SMT siblings only after
 *    every physical core is taken — the Physical/NUMAAware orderings
 *    of mxtasking's core_set, which this mirrors.
 *
 *  - pinCurrentThread() / ScopedAffinity apply the placement via
 *    sched_setaffinity and report (not throw) failure, so containers
 *    and CI sandboxes that forbid the syscall silently run unpinned.
 *    Pinning never changes simulation results — the determinism
 *    contract keys results on indices, never on placement — so a
 *    failed pin is a performance note, not an error.
 */

#ifndef CIDRE_SIM_TOPOLOGY_H
#define CIDRE_SIM_TOPOLOGY_H

#include <string>
#include <vector>

namespace cidre::sim {

/** How shard workers are pinned to CPUs (the `--pin` knob). */
enum class PinMode
{
    /** Never pin. */
    Off,
    /**
     * Pin when it can help: the topology reports at least as many
     * physical cores as the team has workers.  Otherwise run unpinned
     * (oversubscribed or single-core machines, failed detection).
     */
    Auto,
    /** Always request pinning in physical-core order. */
    Physical,
};

/** Parse "auto" | "off" | "physical"; throws std::invalid_argument. */
PinMode parsePinMode(const std::string &text);

/** The knob value back as text (banners, JSON). */
const char *pinModeName(PinMode mode);

/**
 * Parse a kernel cpulist ("0-3,8,10-11") into ascending CPU ids.
 * Whitespace/newline around the list is ignored; malformed input
 * yields an empty vector (detection then falls back, it never throws).
 */
std::vector<int> parseCpuList(const std::string &text);

/** Per-CPU topology table; see the file comment. */
struct CpuTopology
{
    struct Cpu
    {
        int id = 0;      //!< kernel CPU number (cpuN)
        int core = 0;    //!< physical core id within the package
        int package = 0; //!< physical package (socket) id
        int node = 0;    //!< NUMA node
        /** True if a lower-numbered CPU shares this physical core. */
        bool smt_sibling = false;
    };

    /** Online CPUs, ascending id. */
    std::vector<Cpu> cpus;

    /** Distinct (package, core) pairs — the real parallelism budget. */
    unsigned physicalCores() const;
    /** Distinct packages (sockets). */
    unsigned packages() const;
    /** Distinct NUMA nodes. */
    unsigned numaNodes() const;
    /** True if any physical core carries more than one CPU. */
    bool smt() const;

    /**
     * CPU ids in pinning order: primary CPU of every physical core
     * (ascending node, package, core), then the SMT siblings in the
     * same order.  Worker w of a team pins to pinOrder()[w % size].
     */
    std::vector<int> pinOrder() const;

    /** Read the live system (root "/sys/devices/system"). */
    static CpuTopology detect();

    /**
     * Read a sysfs-style tree under @p root (expects "<root>/cpu" and
     * optionally "<root>/node").  Missing or malformed pieces degrade:
     * no online list -> enumerate cpuN directories; no core/package
     * files -> each CPU its own core on package 0; no node tree ->
     * everything on node 0.  An empty tree yields one synthetic CPU so
     * callers never divide by zero.
     */
    static CpuTopology fromSysfs(const std::string &root);
};

/**
 * Pin the calling thread to @p cpu.  Returns false (without throwing)
 * when the kernel refuses (sandbox, cpuset, bad id) or on non-Linux
 * builds; callers treat a failed pin as "run unpinned".
 */
bool pinCurrentThread(int cpu);

/**
 * RAII pin: applies pinCurrentThread(cpu) and restores the thread's
 * previous affinity mask on destruction.  cpu < 0 is an explicit
 * no-op, so call sites can pass "no pin requested" unconditionally.
 */
class ScopedAffinity
{
  public:
    explicit ScopedAffinity(int cpu);
    ~ScopedAffinity();

    ScopedAffinity(const ScopedAffinity &) = delete;
    ScopedAffinity &operator=(const ScopedAffinity &) = delete;

    /** True if the pin was requested and the kernel accepted it. */
    bool pinned() const { return pinned_; }

  private:
    bool pinned_ = false;
    bool saved_ = false;
    /** Opaque storage for the previous cpu_set_t (sized generously). */
    unsigned char saved_mask_[128] = {};
};

/**
 * Resolve @p mode against @p topology for a team of @p width workers:
 * the CPU list to pin to (empty = run unpinned).  Off and single-width
 * teams always resolve to empty; Auto requires physicalCores() >=
 * width; Physical always returns the order (wrapping if the team is
 * wider than the machine).
 */
std::vector<int> resolvePinCpus(PinMode mode, const CpuTopology &topology,
                                unsigned width);

} // namespace cidre::sim

#endif // CIDRE_SIM_TOPOLOGY_H
