/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * The queue is the heart of the simulator and its hottest data
 * structure, so it is built for zero steady-state allocation:
 *
 *  - Events live in a *slot pool* with free-list reuse; the pending
 *    order is a flat binary heap of small POD entries over those slots.
 *  - Callbacks are stored in small-buffer-inlined EventCallback objects;
 *    every callback the engine schedules (a few captured words) fits the
 *    inline buffer, so schedule/fire performs no heap allocation once
 *    the pool and heap have grown to the simulation's high-water mark.
 *  - EventIds are sequence-tagged slot references, making cancel() an
 *    O(1) operation that is safe against slot reuse: sequence numbers
 *    never repeat, so a stale id can never cancel the event that
 *    recycled its slot.
 *
 * Events scheduled for the same timestamp run in FIFO order of
 * scheduling (a monotonically increasing sequence number breaks ties),
 * which makes every simulation fully deterministic.  Cancellation
 * reclaims the slot (and destroys the callback) eagerly; only the
 * 16-byte heap entry lingers until popped, and the heap is compacted
 * whenever cancelled entries outnumber live ones.
 */

#ifndef CIDRE_SIM_EVENT_QUEUE_H
#define CIDRE_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace cidre::sim {

class StateReader;
class StateWriter;

/**
 * Serializable identity of a pending event, used by checkpoint/restore.
 *
 * Closures cannot be serialized, so a checkpointable scheduler tags
 * every event with a small POD describing how to rebuild its callback
 * (an event kind plus two operand words — e.g. a container id and a
 * request index).  kind 0 means "untagged": such events cannot cross a
 * checkpoint and make saveState() throw while pending.
 */
struct EventTag
{
    std::uint32_t kind = 0;
    std::uint32_t a = 0;
    std::uint64_t b = 0;
};

/**
 * A move-only callable of signature void(SimTime) with small-buffer
 * storage: callables up to kInlineCapacity bytes (and max_align_t
 * alignment) are stored inline; larger ones fall back to the heap.
 *
 * This replaces std::function on the simulation hot path.  The inline
 * capacity is sized for the engine's event closures (a this-pointer
 * plus a couple of ids), with headroom for richer captures in tests
 * and benchmarks.
 */
class EventCallback
{
  public:
    static constexpr std::size_t kInlineCapacity = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventCallback(F &&fn) // NOLINT: implicit by design, like std::function
    {
        emplace(std::forward<F>(fn));
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void operator()(SimTime now) { ops_->invoke(storage_, now); }

    /**
     * Replace the held callable with @p fn, constructed in place (no
     * intermediate EventCallback, no relocation).  Wrapping an empty
     * std::function / null function pointer yields an empty callback,
     * matching std::function semantics.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    void emplace(F &&fn)
    {
        reset();
        using Fn = std::decay_t<F>;
        if constexpr (std::is_constructible_v<bool, const Fn &>) {
            if (!static_cast<bool>(fn))
                return;
        }
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    /** Destroy the held callable (if any); leaves *this empty. */
    void reset() noexcept
    {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr)
                ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    /** True if @p Fn would be stored inline (no heap allocation). */
    template <typename Fn>
    static constexpr bool fitsInline()
    {
        return sizeof(Fn) <= kInlineCapacity &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *, SimTime);
        /**
         * Move-construct into @p dst from @p src, destroying @p src.
         * nullptr means the callable is trivially relocatable: moveFrom
         * copies the raw inline buffer instead (no indirect call — the
         * common case for the engine's POD-capturing lambdas).
         */
        void (*relocate)(void *dst, void *src) noexcept;
        /** nullptr means destruction is a no-op (trivial callable). */
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static Fn *inlined(void *storage) noexcept
    {
        return std::launder(reinterpret_cast<Fn *>(storage));
    }

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *s, SimTime t) { (*inlined<Fn>(s))(t); },
        std::is_trivially_copyable_v<Fn>
            ? nullptr
            : +[](void *dst, void *src) noexcept {
                  Fn *from = inlined<Fn>(src);
                  ::new (dst) Fn(std::move(*from));
                  from->~Fn();
              },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void *s) noexcept { inlined<Fn>(s)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *s, SimTime t) { (**inlined<Fn *>(s))(t); },
        nullptr, // the stored Fn* relocates by plain copy
        [](void *s) noexcept { delete *inlined<Fn *>(s); },
    };

    void moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            if (ops_->relocate != nullptr)
                ops_->relocate(storage_, other.storage_);
            else
                std::memcpy(storage_, other.storage_, kInlineCapacity);
            other.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

/**
 * A time-ordered queue of callbacks driving a simulation.
 *
 * Typical use:
 * @code
 *   EventQueue queue;
 *   queue.schedule(msec(5), [&](SimTime now) { ... });
 *   queue.runAll();
 * @endcode
 */
class EventQueue
{
  public:
    /** Event callbacks receive the simulated time they fire at. */
    using Callback = EventCallback;

    /**
     * Opaque handle used to cancel a scheduled event.  Encodes a pooled
     * slot plus the event's unique sequence number; never 0, and a
     * handle whose event fired or was cancelled never aliases a later
     * event (sequence numbers are never reused).
     */
    using EventId = std::uint64_t;

    EventQueue() = default;

    // The queue hands out callbacks that usually capture their owner, so
    // it is not meaningfully copyable.
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @p when must not be earlier than now(); scheduling "in the past"
     * indicates a logic bug and throws.
     * @return a handle usable with cancel().
     */
    EventId schedule(SimTime when, Callback cb);

    /**
     * Hot-path overload for plain callables (the engine's lambdas): the
     * callable is constructed directly inside its pooled slot, with no
     * intermediate EventCallback move.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventId schedule(SimTime when, F &&fn)
    {
        if constexpr (std::is_constructible_v<bool,
                                              const std::decay_t<F> &>) {
            if (!static_cast<bool>(fn))
                throw std::invalid_argument("EventQueue: empty callback");
        }
        const std::uint32_t slot = beginSchedule(when);
        try {
            slots_[slot].callback.emplace(std::forward<F>(fn));
        } catch (...) {
            releaseSlot(slot);
            throw;
        }
        return finishSchedule(when, slot);
    }

    /**
     * Tagged hot-path schedule: identical to schedule(when, fn) but
     * records @p tag as the event's serializable identity, making the
     * event checkpointable (see saveState()).  @p tag.kind must be
     * non-zero.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventId schedule(SimTime when, EventTag tag, F &&fn)
    {
        if (tag.kind == 0)
            throw std::invalid_argument("EventQueue: tag.kind must be != 0");
        const std::uint32_t slot = beginSchedule(when);
        try {
            slots_[slot].callback.emplace(std::forward<F>(fn));
        } catch (...) {
            releaseSlot(slot);
            throw;
        }
        slots_[slot].tag = tag;
        return finishSchedule(when, slot);
    }

    /** Tagged relative-time schedule, mirroring scheduleAfter(). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventId scheduleAfter(SimTime delay, EventTag tag, F &&fn)
    {
        return schedule(now_ + delay, tag, std::forward<F>(fn));
    }

    /**
     * Reserve the next sequence number without scheduling anything.
     *
     * The FIFO tie-break among equal-time events is the allocation
     * order of sequence numbers, so a caller that *knows* an event is
     * coming — but not yet its payload — can claim the event's place in
     * line now and attach the payload later with scheduleReserved().
     * This is what lets a stream-driven engine admit requests one at a
     * time yet replay the exact event interleaving of a trace-driven
     * run: the arrival's slot in the total order is reserved at the
     * same program point where trace mode would have scheduled it.
     *
     * Sequence numbers are never reused; an unused reservation merely
     * shifts every later sequence number up by one, which cannot change
     * the relative order of subsequently scheduled events.
     */
    std::uint64_t reserveSeq();

    /**
     * Tagged schedule using a sequence number from reserveSeq().
     *
     * Identical to schedule(when, tag, fn) except the event's position
     * among equal-time events is @p seq's allocation point, not the
     * present.  Each reservation can be spent at most once (enforced
     * only by the caller; spending one twice would create duplicate
     * keys and corrupt cancellation).
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventId scheduleReserved(SimTime when, std::uint64_t seq, EventTag tag,
                             F &&fn)
    {
        if (tag.kind == 0)
            throw std::invalid_argument("EventQueue: tag.kind must be != 0");
        if (seq == 0 || seq >= next_seq_)
            throw std::logic_error(
                "EventQueue: sequence number was never reserved");
        const std::uint32_t slot = beginSchedule(when);
        try {
            slots_[slot].callback.emplace(std::forward<F>(fn));
        } catch (...) {
            releaseSlot(slot);
            throw;
        }
        slots_[slot].tag = tag;
        return finishScheduleReserved(when, slot, seq);
    }

    /** Schedule @p cb to run @p delay after the current time. */
    EventId scheduleAfter(SimTime delay, Callback cb);

    /** Hot-path overload, mirroring the schedule() one. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    EventId scheduleAfter(SimTime delay, F &&fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1): the slot (and its callback) is reclaimed immediately; the
     * heap entry is skipped when popped, or swept out by compaction once
     * cancelled entries outnumber live ones.  Cancelling an event that
     * already ran (or was already cancelled) is a harmless no-op, which
     * keeps call sites simple.
     */
    void cancel(EventId id);

    /** True if no runnable (non-cancelled) events remain. */
    bool empty() const;

    /**
     * Pop and run the next event.
     * @return false if the queue was empty.
     */
    bool runNext();

    /**
     * Run all events with timestamp <= @p deadline, then advance the clock
     * to @p deadline.
     * @return the number of events executed.
     */
    std::size_t runUntil(SimTime deadline);

    /**
     * Run pending events in order up to *and including* the event with
     * handle @p id, then stop — even if later events share its
     * timestamp.  Unlike runUntil(), the clock is never fast-forwarded
     * past the last executed event.  Throws if @p id is not pending
     * (already ran, cancelled, or never scheduled).
     * @return the number of events executed.
     */
    std::size_t runTo(EventId id);

    /**
     * Run until the queue drains or @p max_events were executed.
     * @return the number of events executed.
     */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

    /** Current simulated time (time of the last executed event). */
    SimTime now() const { return now_; }

    /**
     * Timestamp of the most recently *executed* event (0 before any).
     * Unlike now(), never fast-forwarded by runUntil(): a stepped
     * driver whose final deadline overshoots the last event still reads
     * the same value here as a drain-in-one-go run — which is what
     * makes epoch-stepped execution result-identical to run-to-
     * completion for time-integral metrics (makespan, memory).
     */
    SimTime lastEventTime() const { return last_event_; }

    /** Timestamp of the next runnable event, or kTimeInfinity. */
    SimTime peekTime() const;

    /** Number of events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

    // ---- introspection (tests, benchmarks) ------------------------------

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingCount() const { return heap_.size() - cancelled_; }

    /** Heap entries, including not-yet-swept cancelled ones. */
    std::size_t heapStorageSize() const { return heap_.size(); }

    /** Pooled slots ever created (the high-water mark of pending events). */
    std::size_t slotPoolSize() const { return slots_.size(); }

    // ---- checkpoint/restore ---------------------------------------------

    /**
     * Rebuilds a callback from the EventTag it was scheduled with.
     * Returning an empty callback makes loadState() throw.
     */
    using EventFactory = std::function<EventCallback(const EventTag &)>;

    /**
     * Serialize the queue's full state (clock, counters, heap and the
     * tag of every pending event).  Callbacks themselves are not
     * serialized: loadState() rebuilds them from the tags, so every
     * pending event must have been scheduled through a tagged overload
     * — an armed untagged slot throws std::logic_error.
     */
    void saveState(StateWriter &writer) const;

    /**
     * Restore state saved by saveState(), rebuilding each pending
     * callback via @p factory.  Replaces the queue's entire contents;
     * the restored queue then produces the exact event sequence of the
     * original (keys, FIFO ties and slot reuse included).
     */
    void loadState(StateReader &reader, const EventFactory &factory);

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    /**
     * EventIds and heap keys pack (seq << kSlotBits) | slot: 2^24
     * concurrent pending events, 2^40 events per queue lifetime (a
     * ~20-hour run at 14M events/sec); schedule() throws on either
     * overflow.  Because seq owns the high bits and is unique, comparing
     * keys compares sequence numbers — one branch-free FIFO tie-break.
     */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

    /** One pooled event: callback storage plus its identity key. */
    struct Slot
    {
        EventCallback callback;
        /** Packed key of the armed event; 0 when the slot is free. */
        std::uint64_t armed_key = 0;
        /** Free-list link (kNoSlot when armed or at the list tail). */
        std::uint32_t next_free = kNoSlot;
        /** Serializable identity; kind 0 for untagged events. */
        EventTag tag;
    };

    /**
     * Heap entry: 16 bytes of PODs, cheap to sift.  The heap is 4-ary:
     * half the levels of a binary heap, and the four children of a node
     * span exactly one 64-byte cache line.
     */
    struct HeapEntry
    {
        SimTime when;
        std::uint64_t key; //!< (seq << kSlotBits) | slot
    };

    static bool earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key; // == seq comparison: FIFO among equal times
    }

    bool dead(const HeapEntry &entry) const
    {
        return slots_[entry.key & kSlotMask].armed_key != entry.key;
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t index) noexcept;

    /** Validate @p when / sequence space and acquire a slot. */
    std::uint32_t beginSchedule(SimTime when);
    /** Arm the slot's key and push its heap entry; returns the id. */
    EventId finishSchedule(SimTime when, std::uint32_t slot);
    /** finishSchedule() with a caller-reserved sequence number. */
    EventId finishScheduleReserved(SimTime when, std::uint32_t slot,
                                   std::uint64_t seq);

    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    void popTop();

    /** Drop cancelled entries from the head of the heap. */
    void skipDead() const;

    /** Sweep every cancelled entry and re-heapify. */
    void compact();

    mutable std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoSlot;
    /** Cancelled entries still occupying heap storage. */
    mutable std::size_t cancelled_ = 0;
    SimTime now_ = 0;
    SimTime last_event_ = 0; //!< see lastEventTime()
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace cidre::sim

#endif // CIDRE_SIM_EVENT_QUEUE_H
