/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * The queue is the heart of the simulator.  Events scheduled for the same
 * timestamp run in FIFO order of scheduling (a monotonically increasing
 * sequence number breaks ties), which makes every simulation fully
 * deterministic.  Cancellation is lazy: cancelled events stay in the heap
 * but are skipped when popped.
 */

#ifndef CIDRE_SIM_EVENT_QUEUE_H
#define CIDRE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace cidre::sim {

/**
 * A time-ordered queue of callbacks driving a simulation.
 *
 * Typical use:
 * @code
 *   EventQueue queue;
 *   queue.schedule(msec(5), [&](SimTime now) { ... });
 *   queue.runAll();
 * @endcode
 */
class EventQueue
{
  public:
    /** Event callbacks receive the simulated time they fire at. */
    using Callback = std::function<void(SimTime)>;

    /** Opaque handle used to cancel a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    // The queue hands out callbacks that usually capture their owner, so
    // it is not meaningfully copyable.
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @p when must not be earlier than now(); scheduling "in the past"
     * indicates a logic bug and throws.
     * @return a handle usable with cancel().
     */
    EventId schedule(SimTime when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    EventId scheduleAfter(SimTime delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already ran (or was already cancelled) is a
     * harmless no-op, which keeps call sites simple.
     */
    void cancel(EventId id);

    /** True if no runnable (non-cancelled) events remain. */
    bool empty() const;

    /**
     * Pop and run the next event.
     * @return false if the queue was empty.
     */
    bool runNext();

    /**
     * Run all events with timestamp <= @p deadline, then advance the clock
     * to @p deadline.
     * @return the number of events executed.
     */
    std::size_t runUntil(SimTime deadline);

    /**
     * Run until the queue drains or @p max_events were executed.
     * @return the number of events executed.
     */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

    /** Current simulated time (time of the last executed event). */
    SimTime now() const { return now_; }

    /** Timestamp of the next runnable event, or kTimeInfinity. */
    SimTime peekTime() const;

    /** Number of events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        SimTime when;
        EventId id;
        // Heap comparator: earliest time first; FIFO among equal times.
        bool operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    /** Drop cancelled entries from the head of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>> heap_;
    std::unordered_map<EventId, Callback> callbacks_;
    SimTime now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace cidre::sim

#endif // CIDRE_SIM_EVENT_QUEUE_H
