/**
 * @file
 * A sense-reversing barrier with bounded spin-then-park waiting, built
 * for the sharded engine's lockstep epochs.
 *
 * The per-epoch cost model is what distinguishes this from a
 * general-purpose barrier.  An epoch-stepped sharded trial crosses a
 * barrier thousands of times, and the waits are *short* — the time for
 * the slowest shard to finish its slice of the epoch.  A mutex/condvar
 * barrier pays a futex round trip (microseconds, plus a scheduler wake
 * latency) on nearly every crossing; here arrivals spin on a single
 * shared sense word for a bounded number of iterations first, so the
 * common crossing is a handful of cache transactions, and only a wait
 * that outlives the spin budget parks on the condvar (stragglers,
 * oversubscribed machines, debugger pauses).  TSan-clean: the sense
 * word is an atomic, and the park path re-checks it under the mutex
 * that publishes it.
 *
 * Sense reversing means there is no per-crossing reset phase: each
 * party keeps a local sense bit (in a caller-owned Waiter, so pooled
 * threads can be reused across barriers), the last arrival resets the
 * count and flips the shared sense, and waiting is simply "until the
 * shared sense equals my flipped local sense".  Consecutive epochs
 * cannot interfere because the senses alternate.
 */

#ifndef CIDRE_SIM_EPOCH_BARRIER_H
#define CIDRE_SIM_EPOCH_BARRIER_H

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace cidre::sim {

/** Default spin budget before parking (iterations, not time). */
inline constexpr unsigned kDefaultBarrierSpin = 1u << 12;

/** Reusable N-party barrier; see the file comment. */
class EpochBarrier
{
  public:
    /**
     * Per-party local sense.  Stack-allocate one per participating
     * thread (or team index) and pass the same object to every
     * arriveAndWait() of that party; zero-initialized is correct.
     */
    struct Waiter
    {
        bool sense = false;
    };

    /**
     * @param parties number of arrivals per crossing (>= 1)
     * @param spin_iterations sense-word polls before parking; 0 parks
     *        immediately (pure condvar behaviour, useful under heavy
     *        oversubscription)
     */
    explicit EpochBarrier(unsigned parties,
                          unsigned spin_iterations = kDefaultBarrierSpin);

    EpochBarrier(const EpochBarrier &) = delete;
    EpochBarrier &operator=(const EpochBarrier &) = delete;

    /**
     * Arrive and block until all parties arrived.
     * @return true for the serializing (last-arriving) party — useful
     *         for stats; never let it steer deterministic work, the
     *         last arrival is scheduling-dependent.
     */
    bool arriveAndWait(Waiter &waiter);

    unsigned parties() const { return parties_; }

  private:
    const unsigned parties_;
    const unsigned spin_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<bool> sense_{false};
    std::mutex mutex_;              //!< guards the park path only
    std::condition_variable wake_;
};

} // namespace cidre::sim

#endif // CIDRE_SIM_EPOCH_BARRIER_H
