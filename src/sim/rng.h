/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The standard library's distribution objects are not guaranteed to
 * produce identical streams across implementations, which would make the
 * synthetic traces (and therefore every experiment) non-reproducible
 * between toolchains.  We therefore ship our own engine (xoshiro256**,
 * seeded via splitmix64) and implement every distribution we need on top
 * of it in sim/distributions.h.
 */

#ifndef CIDRE_SIM_RNG_H
#define CIDRE_SIM_RNG_H

#include <cstdint>

namespace cidre::sim {

/**
 * Stateless splitmix64 finalizer: one full avalanche round over @p value.
 *
 * This is the mixing function the Rng seeding recipe uses internally,
 * exposed so seed-derivation schemes (see substreamSeed) share one
 * well-tested bijection.
 */
std::uint64_t splitmix64(std::uint64_t value);

/**
 * Derive the seed of per-trial substream @p index from @p base_seed.
 *
 * The derivation is a pure function of (base_seed, index) — no hidden
 * generator state — so a trial's random stream is fully determined by
 * its submission index regardless of which thread runs it or in what
 * order trials are scheduled.  Distinct indices yield decorrelated
 * seeds (two chained splitmix64 avalanches), and xoshiro256** streams
 * seeded from distinct values do not overlap in any realistic horizon.
 */
std::uint64_t substreamSeed(std::uint64_t base_seed, std::uint64_t index);

/**
 * Deterministic 64-bit PRNG (xoshiro256** 1.0).
 *
 * The full 256-bit state is derived from a single 64-bit seed with
 * splitmix64, following the reference initialization recipe.  The same
 * seed yields the same stream on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Derive an independent child generator.
     *
     * Each call advances this generator and seeds the child from the
     * drawn value, so sub-streams (e.g. one per synthetic function) do
     * not overlap in practice.
     */
    Rng fork();

    /**
     * Checkpoint/restore access to the raw 256-bit state.  Restoring a
     * saved state resumes the exact stream, which checkpointed runs
     * rely on for bit-identical replay.
     */
    void saveState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }
    void loadState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

  private:
    std::uint64_t state_[4];
};

} // namespace cidre::sim

#endif // CIDRE_SIM_RNG_H
