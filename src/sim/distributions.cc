#include "sim/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace cidre::sim {

double
sampleExponential(Rng &rng, double rate)
{
    assert(rate > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

double
sampleNormal(Rng &rng, double mean, double stddev)
{
    // Box-Muller; we deliberately discard the second variate to keep the
    // stream consumption rate independent of call history.
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
sampleLognormalMedian(Rng &rng, double median, double sigma)
{
    assert(median > 0.0);
    return median * std::exp(sampleNormal(rng, 0.0, sigma));
}

double
sampleBoundedPareto(Rng &rng, double alpha, double lo, double hi)
{
    assert(alpha > 0.0 && lo > 0.0 && hi >= lo);
    if (lo == hi)
        return lo;
    const double u = rng.uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse CDF of the bounded Pareto.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double
boundedParetoMean(double alpha, double lo, double hi)
{
    assert(alpha > 0.0 && lo > 0.0 && hi >= lo);
    if (lo == hi)
        return lo;
    if (std::abs(alpha - 1.0) < 1e-9) {
        // alpha → 1 limit: E = lo·hi/(hi-lo) · ln(hi/lo).
        return lo * hi / (hi - lo) * std::log(hi / lo);
    }
    const double la = std::pow(lo, alpha);
    const double ratio_term = 1.0 - std::pow(lo / hi, alpha);
    return la / ratio_term * alpha / (alpha - 1.0) *
        (1.0 / std::pow(lo, alpha - 1.0) -
         1.0 / std::pow(hi, alpha - 1.0));
}

std::uint64_t
samplePoisson(Rng &rng, double mean)
{
    assert(mean >= 0.0);
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion.
        const double limit = std::exp(-mean);
        double prod = rng.uniform();
        std::uint64_t n = 0;
        while (prod > limit) {
            prod *= rng.uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation with continuity correction is adequate for the
    // large per-minute request counts we draw.
    const double z = sampleNormal(rng, mean, std::sqrt(mean));
    return z <= 0.0 ? 0 : static_cast<std::uint64_t>(z + 0.5);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
{
    if (n == 0)
        throw std::invalid_argument("ZipfSampler: n must be > 0");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t rank = 0; rank < n; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
        cdf_[rank] = total;
    }
    for (auto &v : cdf_)
        v /= total;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                 static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double
ZipfSampler::massOf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(std::vector<double> values,
                                 std::vector<double> weights)
    : values_(std::move(values))
{
    if (values_.empty() || values_.size() != weights.size())
        throw std::invalid_argument("DiscreteSampler: bad table");
    cdf_.resize(values_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] < 0.0)
            throw std::invalid_argument("DiscreteSampler: negative weight");
        total += weights[i];
        cdf_[i] = total;
    }
    if (total <= 0.0)
        throw std::invalid_argument("DiscreteSampler: zero total weight");
    for (auto &v : cdf_)
        v /= total;
}

double
DiscreteSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                 static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
    return values_[idx];
}

} // namespace cidre::sim
