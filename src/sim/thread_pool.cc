#include "sim/thread_pool.h"

namespace cidre::sim {

ThreadPool::ThreadPool(unsigned threads)
    : helpers_(threads <= 1 ? 0 : threads - 1)
{
    threads_.reserve(helpers_);
    for (unsigned slot = 1; slot <= helpers_; ++slot)
        threads_.emplace_back([this, slot] { workerMain(slot); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::drain(Loop &loop, unsigned slot)
{
    for (;;) {
        const std::size_t i =
            loop.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop.count)
            return;
        try {
            (*loop.body)(i, slot);
        } catch (...) {
            (*loop.errors)[i] = std::current_exception();
        }
        loop.done.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerMain(unsigned slot)
{
    std::uint64_t seen = 0;
    for (;;) {
        Loop *loop = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || (active_ != nullptr &&
                                     generation_ != seen);
            });
            if (shutdown_)
                return;
            seen = generation_;
            loop = active_;
            // Check in while still holding the mutex: from here on this
            // helper holds a pointer into the caller's stack frame, and
            // the caller must not return until we check back out.
            ++participants_;
        }
        drain(*loop, slot);
        // Check out and wake the caller.  Decrementing under the mutex
        // pairs with the caller's predicate check, so the notification
        // cannot slip into the gap between the caller testing the
        // predicate and blocking (a lost wakeup).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --participants_;
        }
        done_cv_.notify_one();
    }
}

void
ThreadPool::parallelFor(std::size_t count, const Body &body)
{
    if (count == 0)
        return;

    // Serial paths: no helpers, a single index, or a nested call from
    // inside an active loop (running it inline is deterministic and
    // deadlock-free).
    bool expected = false;
    if (helpers_ == 0 || count == 1 ||
        !in_loop_.compare_exchange_strong(expected, true)) {
        std::vector<std::exception_ptr> errors(count);
        Loop loop;
        loop.body = &body;
        loop.count = count;
        loop.errors = &errors;
        drain(loop, 0);
        for (const auto &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
        return;
    }

    std::vector<std::exception_ptr> errors(count);
    Loop loop;
    loop.body = &body;
    loop.count = count;
    loop.errors = &errors;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        active_ = &loop;
        ++generation_;
    }
    work_cv_.notify_all();

    // Participate, then wait for the helpers' stragglers.  Waiting for
    // done == count alone is not enough: a helper that checked in may
    // still be inside drain() (re-reading loop.next/loop.count) after
    // the last body finished, so the caller must also wait for every
    // participant to check out before destroying the stack-allocated
    // Loop.  A helper that has not yet checked in when we clear active_
    // never picks the loop up at all.
    drain(loop, 0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] {
            return loop.done.load(std::memory_order_acquire) == count &&
                   participants_ == 0;
        });
        active_ = nullptr;
    }
    in_loop_.store(false);

    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    parallelFor(count,
                Body([&body](std::size_t i, unsigned) { body(i); }));
}

} // namespace cidre::sim
