#include "sim/thread_pool.h"

#include "sim/topology.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cidre::sim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

} // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions &options)
    : helpers_(options.threads <= 1 ? 0 : options.threads - 1),
      spin_(options.spin_iterations)
{
    threads_.reserve(helpers_);
    for (unsigned slot = 1; slot <= helpers_; ++slot) {
        const int pin_cpu = options.pin_cpus.empty()
            ? -1
            : options.pin_cpus[slot % options.pin_cpus.size()];
        threads_.emplace_back(
            [this, slot, pin_cpu] { workerMain(slot, pin_cpu); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::drain(Loop &loop, unsigned slot)
{
    for (;;) {
        const std::size_t i =
            loop.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop.count)
            return;
        try {
            (*loop.body)(i, slot);
        } catch (...) {
            (*loop.errors)[i] = std::current_exception();
        }
        loop.done.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerMain(unsigned slot, int pin_cpu)
{
    if (pin_cpu >= 0 && pinCurrentThread(pin_cpu))
        pinned_helpers_.fetch_add(1, std::memory_order_relaxed);

    std::uint64_t seen = 0;
    for (;;) {
        // Spin-then-park: a loop published within the spin budget is
        // picked up without any futex traffic; the park path below
        // re-checks the same predicate under the mutex.
        for (unsigned i = 0; i < spin_; ++i) {
            if (shutdown_.load(std::memory_order_acquire) ||
                generation_.load(std::memory_order_acquire) != seen)
                break;
            cpuRelax();
        }
        Loop *loop = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_.load(std::memory_order_relaxed) ||
                       (active_ != nullptr &&
                        generation_.load(std::memory_order_relaxed) !=
                            seen);
            });
            if (shutdown_.load(std::memory_order_relaxed))
                return;
            seen = generation_.load(std::memory_order_relaxed);
            loop = active_;
            // Check in while still holding the mutex: from here on this
            // helper holds a pointer into the caller's stack frame, and
            // the caller must not return until we check back out.
            participants_.fetch_add(1, std::memory_order_relaxed);
        }
        drain(*loop, slot);
        // Check out and wake the caller.  Decrementing under the mutex
        // pairs with the caller's predicate check, so the notification
        // cannot slip into the gap between the caller testing the
        // predicate and blocking (a lost wakeup).
        {
            std::lock_guard<std::mutex> lock(mutex_);
            participants_.fetch_sub(1, std::memory_order_release);
        }
        done_cv_.notify_one();
    }
}

void
ThreadPool::parallelFor(std::size_t count, const Body &body)
{
    if (count == 0)
        return;

    // Serial paths: no helpers, a single index, or a nested call from
    // inside an active loop (running it inline is deterministic and
    // deadlock-free).
    bool expected = false;
    if (helpers_ == 0 || count == 1 ||
        !in_loop_.compare_exchange_strong(expected, true)) {
        std::vector<std::exception_ptr> errors(count);
        Loop loop;
        loop.body = &body;
        loop.count = count;
        loop.errors = &errors;
        drain(loop, 0);
        for (const auto &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
        return;
    }

    std::vector<std::exception_ptr> errors(count);
    Loop loop;
    loop.body = &body;
    loop.count = count;
    loop.errors = &errors;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        active_ = &loop;
        generation_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();

    // Participate, then wait for the helpers' stragglers.  Waiting for
    // done == count alone is not enough: a helper that checked in may
    // still be inside drain() (re-reading loop.next/loop.count) after
    // the last body finished, so the caller must also wait for every
    // participant to check out before destroying the stack-allocated
    // Loop.  A helper that has not yet checked in when we clear active_
    // never picks the loop up at all.
    drain(loop, 0);
    const auto finished = [&] {
        return loop.done.load(std::memory_order_acquire) == count &&
               participants_.load(std::memory_order_acquire) == 0;
    };
    for (unsigned i = 0; i < spin_ && !finished(); ++i)
        cpuRelax();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, finished);
        active_ = nullptr;
    }
    in_loop_.store(false);

    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    parallelFor(count,
                Body([&body](std::size_t i, unsigned) { body(i); }));
}

} // namespace cidre::sim
